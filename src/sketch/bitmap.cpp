#include "sketch/bitmap.hpp"

#include <cmath>
#include <stdexcept>

namespace she::fixed {

Bitmap::Bitmap(std::size_t bits, std::uint32_t seed) : bits_(bits), seed_(seed) {
  if (bits == 0) throw std::invalid_argument("Bitmap: bits must be > 0");
}

void Bitmap::insert(std::uint64_t key) { bits_.set(position(key)); }

void Bitmap::merge(const Bitmap& other) {
  if (bits_.size() != other.bits_.size() || seed_ != other.seed_)
    throw std::invalid_argument("Bitmap::merge: incompatible bitmaps");
  bits_ |= other.bits_;
}

double Bitmap::cardinality() const {
  std::size_t zeros = bits_.size() - bits_.popcount();
  return linear_counting(zeros, bits_.size(), static_cast<double>(bits_.size()));
}

double linear_counting(std::size_t zeros, std::size_t observed_bits,
                       double scale_bits) {
  if (observed_bits == 0) return 0.0;
  if (zeros == 0) {
    // Saturated: report the largest value the estimator can resolve.
    return scale_bits * std::log(static_cast<double>(observed_bits));
  }
  double fraction = static_cast<double>(zeros) / static_cast<double>(observed_bits);
  return -scale_bits * std::log(fraction);
}

}  // namespace she::fixed
