// Fixed-window linear-counting Bitmap [Whang et al. 1990] — CSM triple
// <bit, 1, F(x,y)=1>.  Cardinality is the maximum-likelihood estimate
// -n·ln(u/n) where u is the number of zero bits.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bit_array.hpp"
#include "common/bobhash.hpp"

namespace she::fixed {

class Bitmap {
 public:
  explicit Bitmap(std::size_t bits, std::uint32_t seed = 0);

  /// Insert: set the single hashed bit.
  void insert(std::uint64_t key);

  /// MLE cardinality: -n·ln(u/n).  Returns n·ln(n) (the saturation value)
  /// when every bit is set.
  [[nodiscard]] double cardinality() const;

  void clear() { bits_.clear(); }

  /// Union with an identically-configured bitmap: the merged cardinality
  /// estimates the union of the two inserted key sets.
  void merge(const Bitmap& other);

  [[nodiscard]] std::size_t bit_count() const { return bits_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const { return bits_.memory_bytes(); }

  [[nodiscard]] std::size_t position(std::uint64_t key) const {
    return BobHash32(seed_)(key) % bits_.size();
  }

 private:
  BitArray bits_;
  std::uint32_t seed_;
};

/// Linear-counting estimator shared by Bitmap, SHE-BM, TSV and CVS:
/// cardinality ≈ -scale_bits · ln(zeros / observed_bits).
/// `observed_bits` is the number of bits actually inspected and
/// `scale_bits` the array size the estimate is extrapolated to.
double linear_counting(std::size_t zeros, std::size_t observed_bits,
                       double scale_bits);

}  // namespace she::fixed
