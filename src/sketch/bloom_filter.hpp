// Fixed-window Bloom filter [Bloom 1970] — CSM triple <bit, k, F(x,y)=1>.
//
// Used (a) standalone as the paper's "Ideal" membership baseline (rebuild
// from the exact window contents and query), and (b) as the base algorithm
// SHE-BF extends.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bit_array.hpp"
#include "common/bobhash.hpp"

namespace she::fixed {

class BloomFilter {
 public:
  /// `bits` bit cells, `k` hash functions, hash family selected by `seed`.
  BloomFilter(std::size_t bits, unsigned k, std::uint32_t seed = 0);

  /// Insert a key: set the k hashed bits.
  void insert(std::uint64_t key);

  /// Query: true iff all k hashed bits are set (one-sided error:
  /// false positives possible, false negatives impossible).
  [[nodiscard]] bool contains(std::uint64_t key) const;

  /// Reset to empty.
  void clear() { bits_.clear(); }

  /// Union with a filter of identical geometry and hash family: afterwards
  /// this filter answers true for every key inserted into either side.
  /// Throws std::invalid_argument on mismatched size/k/seed.
  void merge(const BloomFilter& other);

  [[nodiscard]] std::size_t bit_count() const { return bits_.size(); }
  [[nodiscard]] unsigned hash_count() const { return k_; }
  [[nodiscard]] std::size_t memory_bytes() const { return bits_.memory_bytes(); }

  /// i-th hash position for `key` (exposed so SHE-BF maps to identical cells).
  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned i) const {
    return BobHash32(seed_ + i)(key) % bits_.size();
  }

 private:
  BitArray bits_;
  unsigned k_;
  std::uint32_t seed_;
};

}  // namespace she::fixed
