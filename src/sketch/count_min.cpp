#include "sketch/count_min.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace she::fixed {

CountMin::CountMin(std::size_t counters, unsigned k, std::uint32_t seed)
    : cells_(counters, 0), k_(k), seed_(seed) {
  if (counters == 0) throw std::invalid_argument("CountMin: counters must be > 0");
  if (k == 0) throw std::invalid_argument("CountMin: k must be > 0");
}

void CountMin::insert(std::uint64_t key) {
  for (unsigned i = 0; i < k_; ++i) {
    std::uint32_t& c = cells_[position(key, i)];
    if (c != std::numeric_limits<std::uint32_t>::max()) ++c;
  }
}

std::uint64_t CountMin::frequency(std::uint64_t key) const {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (unsigned i = 0; i < k_; ++i)
    best = std::min<std::uint64_t>(best, cells_[position(key, i)]);
  return best;
}

void CountMin::merge(const CountMin& other) {
  if (cells_.size() != other.cells_.size() || k_ != other.k_ ||
      seed_ != other.seed_)
    throw std::invalid_argument("CountMin::merge: incompatible sketches");
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    std::uint64_t sum = std::uint64_t{cells_[i]} + other.cells_[i];
    cells_[i] = sum > std::numeric_limits<std::uint32_t>::max()
                    ? std::numeric_limits<std::uint32_t>::max()
                    : static_cast<std::uint32_t>(sum);
  }
}

void CountMin::clear() { std::fill(cells_.begin(), cells_.end(), 0); }

}  // namespace she::fixed
