// Registry exporters: Prometheus text exposition format and JSON.
//
// Both walk one or more registries (e.g. the process-wide SHE-internals
// registry plus a pipeline's private registry) and render every time
// series.  Same-name entries across registries are merged into one metric
// family so the output stays valid Prometheus exposition.
//
// Histograms render the Prometheus way — cumulative `_bucket{le="..."}`
// series ending in `le="+Inf"`, plus `_sum` and `_count` — while the JSON
// form keeps per-bucket (non-cumulative) counts so consumers can re-bin
// without differencing.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "obs/metrics.hpp"

namespace she::obs {

/// A registry plus a label set appended to every series it contributes.
/// This is how a multi-pipeline exporter (the `she_server` /metrics
/// endpoint) distinguishes per-pipeline registries that all register the
/// same metric names: each pipeline's registry is exported with an extra
/// `pipeline="<name>"` label.
struct LabeledRegistry {
  const Registry* registry = nullptr;
  Labels extra;  ///< appended after the entry's own labels
};

/// Prometheus text exposition format (version 0.0.4).
void write_prometheus(std::ostream& os,
                      std::span<const Registry* const> registries);
void write_prometheus(std::ostream& os,
                      std::span<const LabeledRegistry> registries);
void write_prometheus(std::ostream& os, const Registry& registry);

/// One JSON object: {"schema_version":1,"metrics":[...]}.
void write_json(std::ostream& os, std::span<const Registry* const> registries);
void write_json(std::ostream& os, std::span<const LabeledRegistry> registries);
void write_json(std::ostream& os, const Registry& registry);

/// Escape a string for use inside a JSON string literal (shared with
/// RuntimeStats::to_json and the exporters' label rendering).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace she::obs
