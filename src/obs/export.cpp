#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace she::obs {
namespace {

const char* type_name(Kind k) {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Prometheus label-value / HELP escaping: backslash, quote, newline.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Renders `{a="1",b="2"}`, with `extra` (e.g. le="+Inf") appended last;
/// empty label sets with no extra render as nothing.
std::string prom_labels(const Labels& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return {};
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    if (out.size() > 1) out += ',';
    out += k + "=\"" + prom_escape(v) + "\"";
  }
  if (!extra.empty()) {
    if (out.size() > 1) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

/// All entries across `registries`, grouped into families by name in
/// first-appearance order (Prometheus requires one HELP/TYPE per name).
/// Each registry's extra labels are appended to every entry it
/// contributes.
std::vector<std::vector<Registry::Entry>> families(
    std::span<const LabeledRegistry> registries) {
  std::vector<std::vector<Registry::Entry>> out;
  for (const LabeledRegistry& lr : registries) {
    if (lr.registry == nullptr) continue;
    for (Registry::Entry& e : lr.registry->entries()) {
      e.labels.insert(e.labels.end(), lr.extra.begin(), lr.extra.end());
      auto it = std::find_if(out.begin(), out.end(), [&](const auto& fam) {
        return fam.front().name == e.name;
      });
      if (it == out.end()) {
        out.emplace_back().push_back(std::move(e));
      } else {
        it->push_back(std::move(e));
      }
    }
  }
  return out;
}

/// Plain registries are labeled registries with nothing to append.
std::vector<LabeledRegistry> unlabeled(
    std::span<const Registry* const> registries) {
  std::vector<LabeledRegistry> out;
  out.reserve(registries.size());
  for (const Registry* reg : registries) out.push_back({reg, {}});
  return out;
}

void write_histogram_prom(std::ostream& os, const Registry::Entry& e) {
  const Histogram::Snapshot snap = e.histogram->snapshot();
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (snap.buckets[i] == 0) continue;
    cum += snap.buckets[i];
    os << e.name << "_bucket"
       << prom_labels(e.labels, "le=\"" +
                                    std::to_string(Histogram::upper_bound(i)) +
                                    "\"")
       << ' ' << cum << '\n';
  }
  os << e.name << "_bucket" << prom_labels(e.labels, "le=\"+Inf\"") << ' '
     << snap.count << '\n';
  os << e.name << "_sum" << prom_labels(e.labels) << ' ' << snap.sum << '\n';
  os << e.name << "_count" << prom_labels(e.labels) << ' ' << snap.count
     << '\n';
}

void write_json_labels(std::ostream& os, const Labels& labels) {
  if (labels.empty()) return;
  os << ",\"labels\":{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) os << ',';
    os << '"' << json_escape(labels[i].first) << "\":\""
       << json_escape(labels[i].second) << '"';
  }
  os << '}';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_prometheus(std::ostream& os,
                      std::span<const Registry* const> registries) {
  write_prometheus(os, std::span<const LabeledRegistry>(unlabeled(registries)));
}

void write_prometheus(std::ostream& os,
                      std::span<const LabeledRegistry> registries) {
  for (const auto& fam : families(registries)) {
    const Registry::Entry& head = fam.front();
    os << "# HELP " << head.name << ' ' << prom_escape(head.help) << '\n';
    os << "# TYPE " << head.name << ' ' << type_name(head.kind) << '\n';
    for (const Registry::Entry& e : fam) {
      switch (e.kind) {
        case Kind::kCounter:
          os << e.name << prom_labels(e.labels) << ' ' << e.counter->value()
             << '\n';
          break;
        case Kind::kGauge:
          os << e.name << prom_labels(e.labels) << ' ' << e.gauge->value()
             << '\n';
          break;
        case Kind::kHistogram:
          write_histogram_prom(os, e);
          break;
      }
    }
  }
}

void write_prometheus(std::ostream& os, const Registry& registry) {
  const Registry* one[] = {&registry};
  write_prometheus(os, one);
}

void write_json(std::ostream& os,
                std::span<const Registry* const> registries) {
  write_json(os, std::span<const LabeledRegistry>(unlabeled(registries)));
}

void write_json(std::ostream& os, std::span<const LabeledRegistry> registries) {
  os << "{\"schema_version\":1,\"metrics\":[";
  bool first = true;
  for (const auto& fam : families(registries)) {
    for (const Registry::Entry& e : fam) {
      if (!first) os << ',';
      first = false;
      os << "{\"name\":\"" << json_escape(e.name) << "\",\"type\":\""
         << type_name(e.kind) << '"';
      write_json_labels(os, e.labels);
      switch (e.kind) {
        case Kind::kCounter:
          os << ",\"value\":" << e.counter->value();
          break;
        case Kind::kGauge:
          os << ",\"value\":" << e.gauge->value();
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot snap = e.histogram->snapshot();
          os << ",\"count\":" << snap.count << ",\"sum\":" << snap.sum
             << ",\"buckets\":[";
          bool bfirst = true;
          for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
            if (snap.buckets[i] == 0) continue;
            if (!bfirst) os << ',';
            bfirst = false;
            os << "{\"le\":" << Histogram::upper_bound(i)
               << ",\"count\":" << snap.buckets[i] << '}';
          }
          os << ']';
          break;
        }
      }
      os << '}';
    }
  }
  os << "]}";
}

void write_json(std::ostream& os, const Registry& registry) {
  const Registry* one[] = {&registry};
  write_json(os, one);
}

}  // namespace she::obs
