// Low-overhead request tracing — spans across server ops, pipeline drains
// and batched estimator inserts.
//
// Design:
//
//   SpanRing   fixed-capacity per-thread ring of completed spans,
//              overwrite-oldest.  Exactly one writer (the owning thread);
//              readers (the /trace exporter, the slow-request log) copy
//              slots guarded by a per-slot version counter and discard
//              torn reads, so recording never takes a lock and never
//              waits on a scrape.
//   Clock      timestamps are raw TSC ticks on x86-64 (one rdtsc per span
//              edge), calibrated once against steady_clock at first use;
//              other targets fall back to steady_clock nanoseconds with
//              ticks == ns.
//   Context    a thread-local trace id (0 = untraced) tags every span the
//              thread records; TraceIdScope sets/restores it RAII-style.
//              Pipelines hand the id across the push → drain thread hop
//              via a per-shard atomic (see ingest_pipeline.hpp).
//
// When tracing is off (the default), SHE_TRACE_SPAN costs one relaxed
// load and a predictable branch; nothing is written anywhere.
//
// Rings outlive their threads: a thread's ring returns to a free list on
// thread exit and is recycled by the next new thread, so a scrape can
// still export spans from short-lived connection handlers and the ring
// count is bounded by the peak live-thread count, not thread churn.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace she::obs::trace {

// ---------------------------------------------------------------- toggle --

namespace detail {
extern std::atomic<bool> g_enabled;
extern thread_local bool t_suppress;
}  // namespace detail

/// Is span collection on?  SHE_TRACE_SPAN checks this first; when false
/// the macro is a single predictable branch.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Is this thread inside a SuppressScope (an unsampled request)?  Only
/// consulted after enabled() passes, so the tracing-off fast path stays
/// one relaxed load + branch.
[[nodiscard]] inline bool suppressed() noexcept { return detail::t_suppress; }

/// Flip span collection (any thread, any time).  Spans already recorded
/// stay in their rings until overwritten or reset().
void set_enabled(bool on) noexcept;

/// RAII: hide the calling thread's spans while in scope.  The server's
/// 1-in-N request sampler wraps unsampled requests in one of these; every
/// SHE_TRACE_SPAN below (dispatch, pipeline push, estimator batch) then
/// records nothing, at the cost of one thread-local read per span start.
class SuppressScope {
 public:
  SuppressScope() noexcept : prev_(detail::t_suppress) {
    detail::t_suppress = true;
  }
  ~SuppressScope() { detail::t_suppress = prev_; }
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;

 private:
  bool prev_;
};

// ----------------------------------------------------------------- clock --

/// Raw timestamp: TSC ticks on x86-64, steady_clock ns elsewhere.
[[nodiscard]] std::uint64_t now_ticks() noexcept;

/// Nanoseconds represented by `ticks` raw units (calibrated once, at the
/// first call into the trace clock).
[[nodiscard]] std::uint64_t ticks_to_ns(std::uint64_t ticks) noexcept;

/// steady_clock nanoseconds corresponding to raw timestamp `tick` — maps
/// span edges onto the same clock the rest of the runtime uses.
[[nodiscard]] std::int64_t tick_to_steady_ns(std::uint64_t tick) noexcept;

// ----------------------------------------------------------------- spans --

/// One completed span.  `name` and `cat` must be string literals (or
/// otherwise immortal): the ring stores the pointers, not copies.
struct Span {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t start_ticks = 0;
  std::uint64_t end_ticks = 0;
  std::uint64_t trace_id = 0;  ///< 0 = not part of a traced request
};

/// A span copied out of a ring, timestamps resolved to steady-clock ns.
struct CollectedSpan {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t start_ns = 0;  ///< steady_clock ns
  std::uint64_t dur_ns = 0;
  std::uint64_t trace_id = 0;
  std::uint32_t tid = 0;  ///< stable small id of the recording thread
};

/// Spans retained per thread.  4096 × 64-byte slots = 256 KiB per ring;
/// at ~10 spans per request that is the last ~400 requests of history,
/// which comfortably covers the /trace?ms=500 window under load.
inline constexpr std::size_t kRingCapacity = 4096;

namespace detail {

class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity_pow2, std::uint32_t tid);

  /// Writer-only (owning thread).  Lock-free: bump the slot version to
  /// odd, write the payload, bump to even.
  void record(const Span& s) noexcept;

  /// Copy out up to `capacity` most-recent spans, skipping slots that are
  /// mid-write.  Safe from any thread.
  void collect(std::vector<CollectedSpan>& out) const;

  /// Spans ever recorded by this ring (monotone; readers diff it to size
  /// a `spans_since` window).
  [[nodiscard]] std::uint64_t head() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Hide retained spans from future collects without touching the slots
  /// (the owning thread may be mid-record).
  void clear() noexcept;

  /// Owner-thread read of one slot (no tearing possible: caller is the
  /// writer).  `seq` is an absolute sequence number < head().
  [[nodiscard]] Span slot_unsynchronized(std::uint64_t seq) const noexcept;

 private:
  // Payload fields are relaxed atomics so a torn cross-thread read yields
  // stale *values* the version check discards — same discipline as
  // runtime::SeqlockSlot, and what keeps this clean under tsan.
  struct Slot {
    std::atomic<std::uint32_t> ver{0};  ///< odd while the writer is in it
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> cat{nullptr};
    std::atomic<std::uint64_t> start{0};
    std::atomic<std::uint64_t> end{0};
    std::atomic<std::uint64_t> trace{0};
  };
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> floor_{0};  ///< collects ignore seq < floor
  std::uint32_t tid_;
  std::vector<Slot> slots_;
};

/// The calling thread's ring, creating/recycling one on first use.
[[nodiscard]] SpanRing& thread_ring();

}  // namespace detail

/// Record a completed span on the calling thread's ring.  No-op unless
/// enabled().  `name`/`cat` must be immortal (string literals).
void record(const char* name, const char* cat, std::uint64_t start_ticks,
            std::uint64_t end_ticks, std::uint64_t trace_id) noexcept;

// --------------------------------------------------------------- context --

/// The calling thread's current trace id (0 = untraced).
[[nodiscard]] std::uint64_t current_trace_id() noexcept;
void set_current_trace_id(std::uint64_t id) noexcept;

/// RAII set/restore of the thread's trace id.
class TraceIdScope {
 public:
  explicit TraceIdScope(std::uint64_t id) noexcept
      : prev_(current_trace_id()) {
    set_current_trace_id(id);
  }
  ~TraceIdScope() { set_current_trace_id(prev_); }
  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// RAII span: captures start on construction, records on destruction.
/// Use through SHE_TRACE_SPAN so disabled builds stay one branch.
class SpanGuard {
 public:
  SpanGuard(const char* name, const char* cat) noexcept {
    if (enabled() && !suppressed()) {
      name_ = name;
      cat_ = cat;
      start_ = now_ticks();
    }
  }
  ~SpanGuard() {
    if (name_ != nullptr) finish();
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  void finish() noexcept;  // out-of-line: keeps the inline path tiny

  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t start_ = 0;
};

#define SHE_TRACE_CONCAT2(a, b) a##b
#define SHE_TRACE_CONCAT(a, b) SHE_TRACE_CONCAT2(a, b)

/// Trace the enclosing scope as a span.  `name` and `cat` must be string
/// literals.  Compiles to one relaxed load + branch when tracing is off.
#define SHE_TRACE_SPAN(name, cat)                                      \
  ::she::obs::trace::SpanGuard SHE_TRACE_CONCAT(she_trace_span_,       \
                                                __LINE__)((name), (cat))

// ------------------------------------------------------------ collection --

/// Copy retained spans out of every ring (live and parked).  When
/// `window_ns` > 0, only spans whose *end* falls within the trailing
/// window are returned.  Sorted by start time.
[[nodiscard]] std::vector<CollectedSpan> collect(std::uint64_t window_ns = 0);

/// Drop every retained span (rings stay registered).  For tools/tests
/// that want a per-run baseline.
void reset();

/// Position marker into the calling thread's ring; see spans_since().
struct ThreadCursor {
  const detail::SpanRing* ring = nullptr;
  std::uint64_t head = 0;
};

/// Marks "now" on the calling thread's ring.  Cheap (no allocation once
/// the ring exists).
[[nodiscard]] ThreadCursor thread_cursor();

/// Spans the calling thread recorded since `cur` (oldest first).  Only
/// valid on the thread that made the cursor — that makes the reads
/// tear-free without touching the slot versions.  Used by the server's
/// slow-request log to attach a breakdown of the request it just timed.
[[nodiscard]] std::vector<CollectedSpan> spans_since(const ThreadCursor& cur);

// ---------------------------------------------------------------- export --

/// Write spans as Chrome trace-event JSON ("Trace Event Format", the
/// array-of-"X"-events flavour chrome://tracing and Perfetto load).
/// `ts`/`dur` are microseconds; `pid` is fixed at 1; `tid` is the ring's
/// stable thread id; nonzero trace ids land in args.trace_id.
void write_chrome_trace(std::ostream& os,
                        const std::vector<CollectedSpan>& spans);

/// collect(window_ns) + write_chrome_trace in one call.
void export_chrome_trace(std::ostream& os, std::uint64_t window_ns = 0);

}  // namespace she::obs::trace
