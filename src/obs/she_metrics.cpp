#include "obs/she_metrics.hpp"

namespace she::obs {

SheMetrics& she_metrics() {
  static SheMetrics m = [] {
    Registry& r = default_registry();
    const std::string cells = "she_query_cells_total";
    const std::string cells_help =
        "clock slots classified while answering queries, by age class";
    return SheMetrics{
        r.counter("she_groupclock_lazy_clean_total",
                  "groups reset on access (CheckGroup found a stale mark)"),
        r.counter("she_groupclock_mark_flips_total",
                  "cleaning-cycle boundaries crossed, summed over lazy "
                  "cleans"),
        r.counter("she_hash_calls_total",
                  "BobHash invocations from SHE estimator insert/query "
                  "paths"),
        r.counter("she_queries_total", "estimator query-path invocations"),
        r.counter(cells, cells_help, {{"age_class", "young"}}),
        r.counter(cells, cells_help, {{"age_class", "perfect"}}),
        r.counter(cells, cells_help, {{"age_class", "aged"}}),
        r.counter("she_cm_all_young_queries_total",
                  "SHE-CM queries whose probes were all young (best-effort "
                  "fallback)"),
    };
  }();
  return m;
}

}  // namespace she::obs
