#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <ostream>
#include <thread>

namespace she::obs::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
thread_local bool t_suppress = false;
}  // namespace detail

// ----------------------------------------------------------------- clock --

namespace {

[[nodiscard]] std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] std::uint64_t raw_ticks() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(steady_ns());
#endif
}

struct Clock {
  std::uint64_t base_tick = 0;  ///< raw_ticks() at calibration
  std::int64_t base_ns = 0;     ///< steady_ns() at the same instant
  double ns_per_tick = 1.0;
};

[[nodiscard]] Clock calibrate() noexcept {
  Clock c;
  c.base_tick = raw_ticks();
  c.base_ns = steady_ns();
#if defined(__x86_64__) || defined(_M_X64)
  // One-time ~2ms sleep bounds the rate error at ~0.1% on a steady TSC,
  // plenty for span durations; paid at first use (or set_enabled(true)).
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::uint64_t t1 = raw_ticks();
  const std::int64_t n1 = steady_ns();
  if (t1 > c.base_tick && n1 > c.base_ns) {
    c.ns_per_tick = static_cast<double>(n1 - c.base_ns) /
                    static_cast<double>(t1 - c.base_tick);
  }
#endif
  return c;
}

[[nodiscard]] const Clock& clock_data() noexcept {
  static const Clock c = calibrate();
  return c;
}

}  // namespace

std::uint64_t now_ticks() noexcept { return raw_ticks(); }

std::uint64_t ticks_to_ns(std::uint64_t ticks) noexcept {
  const double ns = static_cast<double>(ticks) * clock_data().ns_per_tick;
  return ns <= 0 ? 0 : static_cast<std::uint64_t>(ns);
}

std::int64_t tick_to_steady_ns(std::uint64_t tick) noexcept {
  const Clock& c = clock_data();
  // Signed tick delta: spans recorded before calibration land before base.
  const double off = static_cast<double>(
                         static_cast<std::int64_t>(tick - c.base_tick)) *
                     c.ns_per_tick;
  return c.base_ns + static_cast<std::int64_t>(off);
}

// ----------------------------------------------------------------- rings --

namespace detail {

SpanRing::SpanRing(std::size_t capacity_pow2, std::uint32_t tid)
    : tid_(tid), slots_(capacity_pow2) {}

void SpanRing::record(const Span& s) noexcept {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[h & (slots_.size() - 1)];
  // Seqlock write: odd version while the payload is inconsistent
  // (writer-side mirror of runtime::SeqlockSlot::publish).
  const std::uint32_t v = slot.ver.load(std::memory_order_relaxed);
  slot.ver.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.name.store(s.name, std::memory_order_relaxed);
  slot.cat.store(s.cat, std::memory_order_relaxed);
  slot.start.store(s.start_ticks, std::memory_order_relaxed);
  slot.end.store(s.end_ticks, std::memory_order_relaxed);
  slot.trace.store(s.trace_id, std::memory_order_relaxed);
  slot.ver.store(v + 2, std::memory_order_release);
  head_.store(h + 1, std::memory_order_release);
}

void SpanRing::collect(std::vector<CollectedSpan>& out) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t floor = floor_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  std::uint64_t seq = head > cap ? head - cap : 0;
  seq = std::max(seq, floor);
  for (; seq < head; ++seq) {
    const Slot& slot = slots_[seq & (cap - 1)];
    const std::uint32_t v1 = slot.ver.load(std::memory_order_acquire);
    if (v1 & 1u) continue;  // writer is mid-slot
    Span s;
    s.name = slot.name.load(std::memory_order_relaxed);
    s.cat = slot.cat.load(std::memory_order_relaxed);
    s.start_ticks = slot.start.load(std::memory_order_relaxed);
    s.end_ticks = slot.end.load(std::memory_order_relaxed);
    s.trace_id = slot.trace.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint32_t v2 = slot.ver.load(std::memory_order_relaxed);
    if (v1 != v2) continue;  // torn: overwritten while copying
    if (s.name == nullptr) continue;
    CollectedSpan c;
    c.name = s.name;
    c.cat = s.cat;
    c.start_ns = tick_to_steady_ns(s.start_ticks);
    c.dur_ns = s.end_ticks >= s.start_ticks
                   ? ticks_to_ns(s.end_ticks - s.start_ticks)
                   : 0;
    c.trace_id = s.trace_id;
    c.tid = tid_;
    out.push_back(c);
  }
}

void SpanRing::clear() noexcept {
  // Never touches the slots (the owning thread may be writing); later
  // collects just ignore everything below the floor.
  floor_.store(head_.load(std::memory_order_acquire),
               std::memory_order_release);
}

Span SpanRing::slot_unsynchronized(std::uint64_t seq) const noexcept {
  const Slot& slot = slots_[seq & (slots_.size() - 1)];
  Span s;
  s.name = slot.name.load(std::memory_order_relaxed);
  s.cat = slot.cat.load(std::memory_order_relaxed);
  s.start_ticks = slot.start.load(std::memory_order_relaxed);
  s.end_ticks = slot.end.load(std::memory_order_relaxed);
  s.trace_id = slot.trace.load(std::memory_order_relaxed);
  return s;
}

namespace {

struct Rings {
  std::mutex mu;
  std::vector<std::shared_ptr<SpanRing>> all;   ///< every ring ever created
  std::vector<std::shared_ptr<SpanRing>> free;  ///< parked, recyclable
  std::uint32_t next_tid = 1;
};

// Leaked on purpose: rings must outlive thread-local destructors that run
// during process teardown.
Rings& rings() {
  static Rings* r = new Rings;
  return *r;
}

struct RingHolder {
  std::shared_ptr<SpanRing> ring;
  ~RingHolder() {
    if (!ring) return;
    Rings& r = rings();
    std::lock_guard<std::mutex> lk(r.mu);
    r.free.push_back(std::move(ring));
  }
};

}  // namespace

SpanRing& thread_ring() {
  thread_local RingHolder h;
  if (!h.ring) {
    Rings& r = rings();
    std::lock_guard<std::mutex> lk(r.mu);
    if (!r.free.empty()) {
      // Recycle a parked ring (its retained spans stay exportable); the
      // ring count is bounded by peak live threads, not thread churn.
      h.ring = r.free.back();
      r.free.pop_back();
    } else {
      h.ring = std::make_shared<SpanRing>(kRingCapacity, r.next_tid++);
      r.all.push_back(h.ring);
    }
  }
  return *h.ring;
}

}  // namespace detail

void record(const char* name, const char* cat, std::uint64_t start_ticks,
            std::uint64_t end_ticks, std::uint64_t trace_id) noexcept {
  if (!enabled() || suppressed()) return;
  Span s;
  s.name = name;
  s.cat = cat;
  s.start_ticks = start_ticks;
  s.end_ticks = end_ticks;
  s.trace_id = trace_id;
  detail::thread_ring().record(s);
}

void set_enabled(bool on) noexcept {
  if (on) (void)clock_data();  // calibrate before the first span lands
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// --------------------------------------------------------------- context --

namespace {
thread_local std::uint64_t t_trace_id = 0;
}  // namespace

std::uint64_t current_trace_id() noexcept { return t_trace_id; }
void set_current_trace_id(std::uint64_t id) noexcept { t_trace_id = id; }

void SpanGuard::finish() noexcept {
  record(name_, cat_, start_, now_ticks(), current_trace_id());
}

// ------------------------------------------------------------ collection --

std::vector<CollectedSpan> collect(std::uint64_t window_ns) {
  std::vector<std::shared_ptr<detail::SpanRing>> snapshot;
  {
    detail::Rings& r = detail::rings();
    std::lock_guard<std::mutex> lk(r.mu);
    snapshot = r.all;
  }
  std::vector<CollectedSpan> out;
  for (const auto& ring : snapshot) ring->collect(out);
  if (window_ns > 0) {
    const std::int64_t cutoff =
        steady_ns() - static_cast<std::int64_t>(window_ns);
    std::erase_if(out, [cutoff](const CollectedSpan& s) {
      return s.start_ns + static_cast<std::int64_t>(s.dur_ns) < cutoff;
    });
  }
  std::sort(out.begin(), out.end(),
            [](const CollectedSpan& a, const CollectedSpan& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

void reset() {
  std::vector<std::shared_ptr<detail::SpanRing>> snapshot;
  {
    detail::Rings& r = detail::rings();
    std::lock_guard<std::mutex> lk(r.mu);
    snapshot = r.all;
  }
  for (const auto& ring : snapshot) ring->clear();
}

ThreadCursor thread_cursor() {
  const detail::SpanRing& ring = detail::thread_ring();
  return ThreadCursor{&ring, ring.head()};
}

std::vector<CollectedSpan> spans_since(const ThreadCursor& cur) {
  std::vector<CollectedSpan> out;
  if (cur.ring == nullptr) return out;
  const detail::SpanRing& ring = *cur.ring;
  const std::uint64_t head = ring.head();
  std::uint64_t seq = cur.head;
  if (head > ring.capacity() && seq < head - ring.capacity())
    seq = head - ring.capacity();  // the oldest were overwritten
  for (; seq < head; ++seq) {
    const Span s = ring.slot_unsynchronized(seq);
    if (s.name == nullptr) continue;
    CollectedSpan c;
    c.name = s.name;
    c.cat = s.cat;
    c.start_ns = tick_to_steady_ns(s.start_ticks);
    c.dur_ns = s.end_ticks >= s.start_ticks
                   ? ticks_to_ns(s.end_ticks - s.start_ticks)
                   : 0;
    c.trace_id = s.trace_id;
    c.tid = ring.tid();
    out.push_back(c);
  }
  return out;
}

// ---------------------------------------------------------------- export --

namespace {

// Span names/cats are string literals by contract, but keep the output
// valid JSON even if a rogue one sneaks a quote or control byte in.
void json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      os << '\\' << *s;
    } else if (c < 0x20) {
      static const char* hex = "0123456789abcdef";
      os << "\\u00" << hex[c >> 4] << hex[c & 0xf];
    } else {
      os << *s;
    }
  }
  os << '"';
}

// Microseconds with fixed 3-decimal nanosecond remainder, no float
// formatting involved.
void micros(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.';
  const std::uint64_t rem = ns % 1000;
  os << static_cast<char>('0' + rem / 100)
     << static_cast<char>('0' + (rem / 10) % 10)
     << static_cast<char>('0' + rem % 10);
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<CollectedSpan>& spans) {
  // Offset timestamps to the earliest span so viewers open at t=0 instead
  // of hours of steady-clock uptime.
  std::int64_t t0 = 0;
  for (const CollectedSpan& s : spans)
    if (t0 == 0 || s.start_ns < t0) t0 = s.start_ns;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const CollectedSpan& s : spans) {
    os << (first ? "\n" : ",\n") << "{\"name\":";
    json_string(os, s.name);
    os << ",\"cat\":";
    json_string(os, s.cat == nullptr ? "she" : s.cat);
    os << ",\"ph\":\"X\",\"ts\":";
    micros(os, static_cast<std::uint64_t>(s.start_ns - t0));
    os << ",\"dur\":";
    micros(os, s.dur_ns);
    os << ",\"pid\":1,\"tid\":" << s.tid;
    if (s.trace_id != 0) {
      os << ",\"args\":{\"trace_id\":\"";
      static const char* hex = "0123456789abcdef";
      os << "0x";
      bool seen = false;
      for (int shift = 60; shift >= 0; shift -= 4) {
        const unsigned nib = (s.trace_id >> shift) & 0xf;
        if (nib != 0 || seen || shift == 0) {
          os << hex[nib];
          seen = true;
        }
      }
      os << "\"}";
    }
    os << '}';
    first = false;
  }
  os << "\n]}\n";
}

void export_chrome_trace(std::ostream& os, std::uint64_t window_ns) {
  write_chrome_trace(os, collect(window_ns));
}

}  // namespace she::obs::trace
