// Lock-free metrics registry — the core of the telemetry subsystem.
//
// Three metric kinds, all safe to update from any thread without locks:
//
//   Counter    monotone uint64, per-thread sharded: inc() is one relaxed
//              fetch_add on a cache-line-private slot, aggregated at scrape.
//   Gauge      a single int64 (set / add / max_of); gauges are low-rate by
//              construction (queue depths, high-water marks) so one atomic
//              cell is enough.
//   Histogram  log₂-bucketed distribution of uint64 samples (nanosecond
//              latencies in practice): bucket i holds values with
//              bit_width == i, so observe() is a clz plus three relaxed
//              fetch_adds on a sharded slot.
//
// A Registry names metrics (Prometheus-style name + help + label set) and
// hands out stable references; registration takes a mutex, updates never
// do.  The process-wide `default_registry()` carries the SHE-internals
// instrumentation and is gated by the global `enabled()` flag so hot paths
// pay one relaxed load + predictable branch when telemetry is off.
// Components with always-on accounting (IngestPipeline) own private
// Registry instances instead and ignore the flag.
//
// Scrapes (export, value()) are wait-free with respect to writers and may
// observe a torn multi-metric state — normal for monitoring systems; each
// individual counter is exact.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace she::obs {

// ---------------------------------------------------------------- toggle --

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Is the process-wide telemetry (default_registry instrumentation) on?
/// Hot paths call this first and skip all metric work when it is false.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flip the process-wide telemetry toggle (any thread, any time).
void set_enabled(bool on) noexcept;

// -------------------------------------------------------------- sharding --

inline constexpr std::size_t kCacheLine = 64;

/// Writer shards per counter; power of two.  More shards than this many
/// concurrently-writing threads just wastes aggregation work.
inline constexpr std::size_t kCounterShards = 16;

/// Histograms carry kBuckets cells per shard, so they shard more coarsely.
inline constexpr std::size_t kHistogramShards = 4;

/// Stable per-thread slot index in [0, kCounterShards): threads hash to
/// slots round-robin at first use, so unrelated threads rarely collide and
/// a given thread always hits the same cache line.
[[nodiscard]] inline std::size_t thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kCounterShards - 1);
  return slot;
}

// --------------------------------------------------------------- metrics --

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    shards_[thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Slot& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    alignas(kCacheLine) std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kCounterShards> shards_;
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }

  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }

  /// Monotone ratchet: keep the maximum of the current and given value,
  /// correct under concurrent writers (CAS loop).
  void max_of(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  alignas(kCacheLine) std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  /// Bucket 0 holds v == 0; bucket i >= 1 holds bit_width(v) == i, i.e.
  /// v in [2^(i-1), 2^i).  48 buckets cover nanosecond latencies up to
  /// ~39 hours; larger samples clamp into the last bucket.
  static constexpr std::size_t kBuckets = 48;

  void observe(std::uint64_t v) noexcept {
    Slot& s = shards_[thread_shard() & (kHistogramShards - 1)];
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0
                  : std::min<std::size_t>(kBuckets - 1, std::bit_width(v));
  }

  /// Exclusive upper bound of bucket i (inclusive lower is the previous
  /// bound); the last bucket is unbounded and reported as +Inf.
  [[nodiscard]] static std::uint64_t upper_bound(std::size_t i) noexcept {
    return i == 0 ? 1 : std::uint64_t{1} << i;
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };

  [[nodiscard]] Snapshot snapshot() const noexcept {
    Snapshot out;
    for (const Slot& s : shards_) {
      out.count += s.count.load(std::memory_order_relaxed);
      out.sum += s.sum.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < kBuckets; ++i)
        out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return snapshot().count; }

  void reset() noexcept {
    for (Slot& s : shards_) {
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Slot {
    alignas(kCacheLine) std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Slot, kHistogramShards> shards_;
};

// -------------------------------------------------------------- registry --

enum class Kind { kCounter, kGauge, kHistogram };

/// Ordered label set ("shard" -> "3").  Kept as a flat vector: label counts
/// are tiny and registration compares whole sets.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register-or-lookup: the same (name, labels) always returns the same
  /// object, so call sites may re-request instead of caching.  Registering
  /// a name under two different kinds throws std::logic_error.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       Labels labels = {});

  /// Zero every metric's value (registrations are kept).  Used by tools and
  /// tests that want a per-run baseline from a process-wide registry.
  void reset();

  /// One registered time series: exactly one of the metric pointers is set
  /// (matching `kind`).  Pointers stay valid for the registry's lifetime.
  struct Entry {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    Labels labels;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// A consistent copy of the registration list, in registration order.
  /// Metric values are still read live through the entry pointers.
  [[nodiscard]] std::vector<Entry> entries() const;

 private:
  struct Row {
    std::string name;
    std::string help;
    Kind kind;
    Labels labels;
    std::size_t index;  ///< into the matching metric deque
  };

  /// Finds an existing row or appends one; returns its index in rows_.
  std::size_t intern(const std::string& name, const std::string& help,
                     Kind kind, Labels&& labels);

  mutable std::mutex mu_;
  std::vector<Row> rows_;
  std::deque<Counter> counters_;      // deque: stable addresses
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

/// The process-wide registry carrying the SHE-internals instrumentation.
[[nodiscard]] Registry& default_registry();

}  // namespace she::obs
