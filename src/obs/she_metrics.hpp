// SHE-internals metric handles — one lazily-built bundle of references into
// default_registry(), so hot paths pay a function-local-static check plus a
// relaxed increment instead of a name lookup.
//
// Call sites gate on obs::enabled() *before* touching the bundle; the
// bundle itself never checks, so cold paths (export, tests) can read the
// counters regardless of the toggle.
//
// Metric catalog (see docs/INTERNALS.md "Telemetry"):
//   she_groupclock_lazy_clean_total   groups reset on access (CheckGroup hit)
//   she_groupclock_mark_flips_total   cleaning-cycle boundaries crossed,
//                                     summed over lazy cleans (>= cleans;
//                                     the excess is aliasing with 1-bit marks)
//   she_hash_calls_total              BobHash invocations from SHE estimators
//   she_queries_total                 estimator query-path invocations
//   she_query_cells_total{age_class=} clock slots classified while answering
//                                     queries: young (< window), perfect
//                                     (== window), aged (> window)
//   she_cm_all_young_queries_total    SHE-CM queries whose probes were all
//                                     young (best-effort fallback taken)
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace she::obs {

struct SheMetrics {
  Counter& groupclock_lazy_clean;
  Counter& groupclock_mark_flips;
  Counter& hash_calls;
  Counter& queries;
  Counter& query_cells_young;
  Counter& query_cells_perfect;
  Counter& query_cells_aged;
  Counter& cm_all_young_queries;
};

/// The process-wide bundle (registered in default_registry on first use).
[[nodiscard]] SheMetrics& she_metrics();

/// Per-query accumulator for the young/perfect/aged classification: queries
/// tally locally (plain ints, no atomics inside the query loop) and commit
/// once on every exit path.
struct AgeClassCounts {
  std::uint64_t young = 0;
  std::uint64_t perfect = 0;
  std::uint64_t aged = 0;

  void add(std::uint64_t age, std::uint64_t window) noexcept {
    if (age < window) ++young;
    else if (age == window) ++perfect;
    else ++aged;
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return young + perfect + aged;
  }

  /// Flush into the registry and count one query.  `track` is the
  /// obs::enabled() value the caller sampled at query entry.
  void commit(bool track) const {
    if (!track) return;
    SheMetrics& m = she_metrics();
    m.queries.inc();
    if (young > 0) m.query_cells_young.inc(young);
    if (perfect > 0) m.query_cells_perfect.inc(perfect);
    if (aged > 0) m.query_cells_aged.inc(aged);
  }
};

}  // namespace she::obs
