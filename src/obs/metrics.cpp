#include "obs/metrics.hpp"

#include <stdexcept>

namespace she::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::size_t Registry::intern(const std::string& name, const std::string& help,
                             Kind kind, Labels&& labels) {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    if (r.name != name || r.labels != labels) continue;
    if (r.kind != kind)
      throw std::logic_error("obs::Registry: metric '" + name +
                             "' re-registered under a different kind");
    return i;
  }
  Row row;
  row.name = name;
  row.help = help;
  row.kind = kind;
  row.labels = std::move(labels);
  switch (kind) {
    case Kind::kCounter:
      counters_.emplace_back();
      row.index = counters_.size() - 1;
      break;
    case Kind::kGauge:
      gauges_.emplace_back();
      row.index = gauges_.size() - 1;
      break;
    case Kind::kHistogram:
      histograms_.emplace_back();
      row.index = histograms_.size() - 1;
      break;
  }
  rows_.push_back(std::move(row));
  return rows_.size() - 1;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[rows_[intern(name, help, Kind::kCounter, std::move(labels))]
                       .index];
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[rows_[intern(name, help, Kind::kGauge, std::move(labels))]
                     .index];
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_[rows_[intern(name, help, Kind::kHistogram,
                                  std::move(labels))]
                         .index];
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& c : counters_) c.reset();
  for (Gauge& g : gauges_) g.reset();
  for (Histogram& h : histograms_) h.reset();
}

std::vector<Registry::Entry> Registry::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) {
    Entry e;
    e.name = r.name;
    e.help = r.help;
    e.kind = r.kind;
    e.labels = r.labels;
    switch (r.kind) {
      case Kind::kCounter:
        e.counter = &counters_[r.index];
        break;
      case Kind::kGauge:
        e.gauge = &gauges_[r.index];
        break;
      case Kind::kHistogram:
        e.histogram = &histograms_[r.index];
        break;
    }
    out.push_back(std::move(e));
  }
  return out;
}

Registry& default_registry() {
  static Registry reg;
  return reg;
}

}  // namespace she::obs
