#include "runtime/runtime_stats.hpp"

#include <ostream>
#include <sstream>

#include "common/table.hpp"

namespace she::runtime {

void RuntimeStats::set_rate(double elapsed) {
  elapsed_seconds = elapsed;
  // Guard the division: a stats() call racing start(), a closed-before-
  // started pipeline, or coarse clocks can yield elapsed ~ 0 (or < 0);
  // report a 0 rate instead of inf/NaN so JSON consumers stay numeric.
  constexpr double kMinElapsed = 1e-9;
  items_per_sec = elapsed > kMinElapsed
                      ? static_cast<double>(inserted) / elapsed
                      : 0.0;
}

void RuntimeStats::print(std::ostream& os) const {
  os << "pipeline: " << shards << " shard(s) x " << producers
     << " producer(s)\n";
  os << "  produced " << produced << "  inserted " << inserted << "  dropped "
     << dropped << "\n";
  os << "  drains " << drains << "  snapshot publishes " << publishes
     << "  queue high-water " << queue_hwm << "\n";
  os << "  backpressure stalls " << stall_events << "  ("
     << static_cast<double>(stall_ns) / 1e6 << " ms spinning)  timeouts "
     << push_timeouts << "\n";
  if (worker_faults > 0 || worker_restarts > 0 || worker_wedged > 0 ||
      checkpoints > 0) {
    os << "  worker faults " << worker_faults << "  wedged " << worker_wedged
       << "  restarts " << worker_restarts << "  items lost " << items_lost
       << "  replayed " << items_replayed << "  checkpoints " << checkpoints
       << "\n";
  }
  os << "  elapsed " << elapsed_seconds << " s  ->  " << items_per_sec
     << " items/s (last " << rate_window_s << "s: " << recent_items_per_sec
     << ")\n";
  if (per_shard.size() > 1) {
    Table t({"shard", "inserted", "dropped", "drains", "publishes", "hwm",
             "restarts", "lost"});
    for (std::size_t s = 0; s < per_shard.size(); ++s) {
      const ShardStats& sh = per_shard[s];
      t.add(s, sh.inserted, sh.dropped, sh.drains, sh.publishes, sh.queue_hwm,
            sh.restarts, sh.lost);
    }
    t.print(os);
  }
}

std::string RuntimeStats::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"shards\":" << shards
     << ",\"producers\":" << producers
     << ",\"produced\":" << produced << ",\"inserted\":" << inserted
     << ",\"dropped\":" << dropped << ",\"drains\":" << drains
     << ",\"publishes\":" << publishes << ",\"queue_hwm\":" << queue_hwm
     << ",\"stall_ns\":" << stall_ns << ",\"stall_events\":" << stall_events
     << ",\"push_timeouts\":" << push_timeouts
     << ",\"worker_restarts\":" << worker_restarts
     << ",\"worker_faults\":" << worker_faults
     << ",\"worker_wedged\":" << worker_wedged
     << ",\"items_lost\":" << items_lost
     << ",\"items_replayed\":" << items_replayed
     << ",\"checkpoints\":" << checkpoints
     << ",\"elapsed_seconds\":" << elapsed_seconds
     << ",\"items_per_sec\":" << items_per_sec
     << ",\"recent_items_per_sec\":" << recent_items_per_sec
     << ",\"rate_window_s\":" << rate_window_s << ",\"per_shard\":[";
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    const ShardStats& sh = per_shard[s];
    if (s) os << ",";
    os << "{\"inserted\":" << sh.inserted << ",\"dropped\":" << sh.dropped
       << ",\"drains\":" << sh.drains << ",\"publishes\":" << sh.publishes
       << ",\"queue_hwm\":" << sh.queue_hwm
       << ",\"restarts\":" << sh.restarts << ",\"faults\":" << sh.faults
       << ",\"lost\":" << sh.lost << ",\"replayed\":" << sh.replayed
       << ",\"checkpoints\":" << sh.checkpoints << "}";
  }
  os << "]}";
  return os.str();
}

void RateWindow::sample(std::int64_t now_ns, std::uint64_t total) {
  samples_.emplace_back(now_ns, total);
  // Keep one sample at or before the window start so the rate really
  // covers the whole window, not just the interior samples.
  while (samples_.size() > 2 && samples_[1].first <= now_ns - window_ns_)
    samples_.pop_front();
}

double RateWindow::rate() const {
  if (samples_.size() < 2) return 0.0;
  const auto& [t0, c0] = samples_.front();
  const auto& [t1, c1] = samples_.back();
  if (t1 <= t0 || c1 < c0) return 0.0;
  return static_cast<double>(c1 - c0) /
         (static_cast<double>(t1 - t0) / 1e9);
}

}  // namespace she::runtime
