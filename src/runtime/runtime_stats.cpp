#include "runtime/runtime_stats.hpp"

#include <ostream>
#include <sstream>

#include "common/table.hpp"

namespace she::runtime {

void RuntimeStats::set_rate(double elapsed) {
  elapsed_seconds = elapsed;
  // Guard the division: a stats() call racing start(), a closed-before-
  // started pipeline, or coarse clocks can yield elapsed ~ 0 (or < 0);
  // report a 0 rate instead of inf/NaN so JSON consumers stay numeric.
  constexpr double kMinElapsed = 1e-9;
  items_per_sec = elapsed > kMinElapsed
                      ? static_cast<double>(inserted) / elapsed
                      : 0.0;
}

void RuntimeStats::print(std::ostream& os) const {
  os << "pipeline: " << shards << " shard(s) x " << producers
     << " producer(s)\n";
  os << "  produced " << produced << "  inserted " << inserted << "  dropped "
     << dropped << "\n";
  os << "  drains " << drains << "  snapshot publishes " << publishes
     << "  queue high-water " << queue_hwm << "\n";
  os << "  backpressure stalls " << stall_events << "  ("
     << static_cast<double>(stall_ns) / 1e6 << " ms spinning)\n";
  os << "  elapsed " << elapsed_seconds << " s  ->  " << items_per_sec
     << " items/s\n";
  if (per_shard.size() > 1) {
    Table t({"shard", "inserted", "dropped", "drains", "publishes", "hwm"});
    for (std::size_t s = 0; s < per_shard.size(); ++s) {
      const ShardStats& sh = per_shard[s];
      t.add(s, sh.inserted, sh.dropped, sh.drains, sh.publishes, sh.queue_hwm);
    }
    t.print(os);
  }
}

std::string RuntimeStats::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"shards\":" << shards
     << ",\"producers\":" << producers
     << ",\"produced\":" << produced << ",\"inserted\":" << inserted
     << ",\"dropped\":" << dropped << ",\"drains\":" << drains
     << ",\"publishes\":" << publishes << ",\"queue_hwm\":" << queue_hwm
     << ",\"stall_ns\":" << stall_ns << ",\"stall_events\":" << stall_events
     << ",\"elapsed_seconds\":" << elapsed_seconds
     << ",\"items_per_sec\":" << items_per_sec << ",\"per_shard\":[";
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    const ShardStats& sh = per_shard[s];
    if (s) os << ",";
    os << "{\"inserted\":" << sh.inserted << ",\"dropped\":" << sh.dropped
       << ",\"drains\":" << sh.drains << ",\"publishes\":" << sh.publishes
       << ",\"queue_hwm\":" << sh.queue_hwm << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace she::runtime
