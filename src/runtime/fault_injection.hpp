// Deterministic fault-injection harness for the ingest runtime.
//
// Recovery code that is never executed is broken code waiting for an
// outage, so the supervision/checkpoint/backpressure paths are driven by
// *injected* faults the tests (and `she_tool pipeline --inject`) can place
// deterministically:
//
//   kWorkerThrow        worker throws InjectedFault once its shard has
//                       applied `at` items (fires between batches)
//   kConsumerStall      worker sleeps `param` milliseconds at item `at`
//                       (drives heartbeat-staleness / wedge detection and
//                       backpressure timeouts)
//   kCheckpointBitFlip  the shard's `at`-th checkpoint frame gets one bit
//                       flipped, at a position seeded by `param` (drives
//                       CRC rejection)
//   kCheckpointTruncate the shard's `at`-th checkpoint frame is cut in
//                       half before hitting disk (drives length rejection)
//   kWalTornWrite       the shard's WAL frame with seq `at` is cut inside
//                       its header before the append fails (a crash mid-
//                       write; drives torn-tail truncation on recovery)
//   kWalPartialFrame    same, but the whole header and half the payload
//                       land (the other torn shape: valid-looking prefix,
//                       CRC mismatch)
//   kWalShortFsync      the mode-required fdatasync for the WAL frame with
//                       seq `at` reports failure — the batch is written
//                       but must NOT be acked (drives replay + dedup)
//   kWalNoSpace         the WAL append for frame seq `at` fails with
//                       ENOSPC before anything reaches the file (drives
//                       degraded read-only mode + recovery probe)
//   kCheckpointEio      the shard's `at`-th checkpoint write fails with
//                       EIO (drives degraded mode from the snapshot path)
//
// Cost model: the whole harness is compiled out unless SHE_FAULT_INJECTION
// is defined (a CMake option, ON by default so tools and tests work out of
// the box; production builds turn it off for literally zero overhead).
// When compiled in, an unarmed injector costs one relaxed atomic load per
// *sweep* — never per item — and arming is test-only, so determinism
// matters more than speed: armed checks take a mutex.
//
// The injector is process-global (`fault::injector()`): specs are armed by
// tests or the CLI before the pipeline runs and cleared afterwards.  Each
// spec fires at most once.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace she::runtime::fault {

enum class Point {
  kWorkerThrow,
  kConsumerStall,
  kCheckpointBitFlip,
  kCheckpointTruncate,
  kWalTornWrite,
  kWalPartialFrame,
  kWalShortFsync,
  kWalNoSpace,
  kCheckpointEio,
};

inline constexpr std::size_t kAnyShard = static_cast<std::size_t>(-1);

/// One armed fault.  `at` is compared against the shard's applied-item
/// count (worker faults/stalls) or its checkpoint ordinal (corruptions);
/// the spec fires on the first check where the count reaches it.
struct Spec {
  Point point = Point::kWorkerThrow;
  std::size_t shard = kAnyShard;
  std::uint64_t at = 0;
  std::uint64_t param = 0;  ///< stall: milliseconds; bit-flip: seed
};

/// What an armed kWorkerThrow raises inside the worker loop.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse a CLI spec: "point[:shard[:at[:param]]]" with point one of
/// throw | stall | ckpt-bitflip | ckpt-truncate and shard a number or
/// "any".  Examples: "throw:0:5000", "stall:any:1000:250",
/// "ckpt-bitflip:0:1:42".  Throws std::invalid_argument on malformed
/// text.  Always compiled (the CLI rejects --inject up front when the
/// harness is off, with a message rather than a parse error).
[[nodiscard]] inline Spec parse_spec(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t colon = text.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.empty() || parts.size() > 4)
    throw std::invalid_argument("fault spec must be point[:shard[:at[:param]]]: " +
                                text);
  Spec s;
  if (parts[0] == "throw") s.point = Point::kWorkerThrow;
  else if (parts[0] == "stall") s.point = Point::kConsumerStall;
  else if (parts[0] == "ckpt-bitflip") s.point = Point::kCheckpointBitFlip;
  else if (parts[0] == "ckpt-truncate") s.point = Point::kCheckpointTruncate;
  else if (parts[0] == "wal-torn") s.point = Point::kWalTornWrite;
  else if (parts[0] == "wal-partial") s.point = Point::kWalPartialFrame;
  else if (parts[0] == "wal-short-fsync") s.point = Point::kWalShortFsync;
  else if (parts[0] == "wal-enospc") s.point = Point::kWalNoSpace;
  else if (parts[0] == "ckpt-eio") s.point = Point::kCheckpointEio;
  else
    throw std::invalid_argument(
        "fault point must be throw|stall|ckpt-bitflip|ckpt-truncate|"
        "wal-torn|wal-partial|wal-short-fsync|wal-enospc|ckpt-eio: " + text);
  auto number = [&](const std::string& t) -> std::uint64_t {
    std::size_t pos = 0;
    std::uint64_t v = 0;
    try {
      v = std::stoull(t, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != t.size() || t.empty())
      throw std::invalid_argument("bad number '" + t + "' in fault spec: " +
                                  text);
    return v;
  };
  if (parts.size() > 1 && parts[1] != "any")
    s.shard = static_cast<std::size_t>(number(parts[1]));
  if (parts.size() > 2) s.at = number(parts[2]);
  if (parts.size() > 3) s.param = number(parts[3]);
  return s;
}

#if defined(SHE_FAULT_INJECTION)

class Injector {
 public:
  void arm(const Spec& s) {
    std::lock_guard<std::mutex> lk(mu_);
    armed_specs_.push_back({s, false});
    armed_.store(true, std::memory_order_relaxed);
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    armed_specs_.clear();
    armed_.store(false, std::memory_order_relaxed);
  }

  /// One relaxed load — the only cost the runtime pays when nothing is
  /// armed.
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Fire (at most once per spec) the first armed spec matching
  /// (point, shard) whose trigger `at` has been reached.
  std::optional<Spec> fire(Point p, std::size_t shard, std::uint64_t count) {
    if (!armed()) return std::nullopt;
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& a : armed_specs_) {
      if (a.fired || a.spec.point != p) continue;
      if (a.spec.shard != kAnyShard && a.spec.shard != shard) continue;
      if (count < a.spec.at) continue;
      a.fired = true;
      return a.spec;
    }
    return std::nullopt;
  }

 private:
  struct Armed {
    Spec spec;
    bool fired = false;
  };
  mutable std::mutex mu_;
  std::vector<Armed> armed_specs_;
  std::atomic<bool> armed_{false};
};

inline Injector& injector() {
  static Injector i;
  return i;
}

/// Worker-loop checkpoint: throw once the shard has applied `count` items.
inline void maybe_throw(std::size_t shard, std::uint64_t count) {
  if (auto s = injector().fire(Point::kWorkerThrow, shard, count))
    throw InjectedFault("injected worker fault (shard " +
                        std::to_string(shard) + ", item " +
                        std::to_string(count) + ")");
}

/// Worker-loop checkpoint: sleep `param` ms once `count` items applied.
inline void maybe_stall(std::size_t shard, std::uint64_t count) {
  if (auto s = injector().fire(Point::kConsumerStall, shard, count))
    std::this_thread::sleep_for(std::chrono::milliseconds(s->param));
}

/// Checkpoint-write hook: corrupt `frame` in place for the shard's
/// `ordinal`-th checkpoint.  Bit position is derived from the spec's seed
/// so runs are reproducible.
inline void maybe_corrupt_frame(std::size_t shard, std::uint64_t ordinal,
                                std::vector<char>& frame) {
  if (frame.empty()) return;
  if (auto s = injector().fire(Point::kCheckpointBitFlip, shard, ordinal)) {
    std::uint64_t h = s->param + 0x9E3779B97F4A7C15ULL;
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    const std::size_t bit = static_cast<std::size_t>(h % (frame.size() * 8));
    frame[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(frame[bit / 8]) ^ (1u << (bit % 8)));
  }
  if (injector().fire(Point::kCheckpointTruncate, shard, ordinal))
    frame.resize(frame.size() / 2);
}

/// WAL-append hook: the byte count of the encoded frame that actually
/// reaches the file (the append then throws, simulating a crash mid-
/// write).  kWalTornWrite cuts inside the header; kWalPartialFrame writes
/// the whole header plus half the payload.  `seq` is the frame's WAL
/// sequence number, compared against the spec's `at`.
inline std::size_t maybe_torn_wal(std::size_t shard, std::uint64_t seq,
                                  std::size_t frame_bytes,
                                  std::size_t header_bytes) {
  if (injector().fire(Point::kWalTornWrite, shard, seq))
    return header_bytes / 2;
  if (injector().fire(Point::kWalPartialFrame, shard, seq))
    return header_bytes + (frame_bytes - header_bytes) / 2;
  return frame_bytes;
}

/// WAL-fsync hook: true = this frame's mode-required fdatasync must
/// report failure (the append throws after writing; the batch stays
/// unacked and the client's replay exercises the dedup path).
inline bool maybe_fail_fsync(std::size_t shard, std::uint64_t seq) {
  return injector().fire(Point::kWalShortFsync, shard, seq).has_value();
}

/// WAL-append hook: the errno this append must fail with before anything
/// reaches the file (0 = healthy).  Drives degraded read-only mode.
inline int maybe_disk_errno(std::size_t shard, std::uint64_t seq) {
  if (injector().fire(Point::kWalNoSpace, shard, seq)) return ENOSPC;
  return 0;
}

/// Checkpoint-write hook: true = the shard's `ordinal`-th checkpoint
/// write must fail with EIO (the frame never replaces the previous one;
/// the pipeline goes degraded instead of crashing the worker).
inline bool maybe_ckpt_eio(std::size_t shard, std::uint64_t ordinal) {
  return injector().fire(Point::kCheckpointEio, shard, ordinal).has_value();
}

#else  // !SHE_FAULT_INJECTION — zero-cost stubs, nothing to branch on.

class Injector {
 public:
  void arm(const Spec&) {}
  void clear() {}
  [[nodiscard]] bool armed() const noexcept { return false; }
  std::optional<Spec> fire(Point, std::size_t, std::uint64_t) {
    return std::nullopt;
  }
};

inline Injector& injector() {
  static Injector i;
  return i;
}

inline void maybe_throw(std::size_t, std::uint64_t) {}
inline void maybe_stall(std::size_t, std::uint64_t) {}
inline void maybe_corrupt_frame(std::size_t, std::uint64_t,
                                std::vector<char>&) {}
inline std::size_t maybe_torn_wal(std::size_t, std::uint64_t,
                                  std::size_t frame_bytes, std::size_t) {
  return frame_bytes;
}
inline bool maybe_fail_fsync(std::size_t, std::uint64_t) { return false; }
inline int maybe_disk_errno(std::size_t, std::uint64_t) { return 0; }
inline bool maybe_ckpt_eio(std::size_t, std::uint64_t) { return false; }

#endif  // SHE_FAULT_INJECTION

}  // namespace she::runtime::fault
