// RuntimeStats — observability report for the ingest pipeline.
//
// A plain-struct *view* over the pipeline's metric registry: counters live
// in obs::Counter/Gauge objects updated on the hot paths, and
// IngestPipeline::stats() reads them into this snapshot.  The JSON form is
// what `she_tool pipeline --json` and bench/pipeline_throughput emit so
// runs are machine-comparable; `schema_version` lets downstream
// comparisons evolve with the field set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace she::runtime {

struct ShardStats {
  std::uint64_t inserted = 0;   ///< items drained into the estimator
  std::uint64_t dropped = 0;    ///< pushes rejected under DropNewest
  std::uint64_t drains = 0;     ///< non-empty drain sweeps
  std::uint64_t publishes = 0;  ///< snapshot publications
  std::uint64_t queue_hwm = 0;  ///< deepest single ring observed
};

struct RuntimeStats {
  /// Bumped whenever the JSON field set changes: 1 = seed layout,
  /// 2 = adds schema_version itself and the registry-backed counters,
  /// 3 = adds producer backpressure stalls (stall_ns, stall_events).
  static constexpr int kSchemaVersion = 3;

  std::size_t shards = 0;
  std::size_t producers = 0;
  std::uint64_t produced = 0;   ///< accepted pushes across producers
  std::uint64_t inserted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t drains = 0;
  std::uint64_t publishes = 0;
  std::uint64_t queue_hwm = 0;  ///< max over shards
  std::uint64_t stall_ns = 0;   ///< producer spin time on full rings (Block)
  std::uint64_t stall_events = 0;  ///< full-ring stall episodes (Block)
  double elapsed_seconds = 0;   ///< start() until close() (or stats() call)
  double items_per_sec = 0;     ///< inserted / elapsed
  std::vector<ShardStats> per_shard;

  /// Record the elapsed time and derive items_per_sec from `inserted`,
  /// guarding against zero/near-zero (or negative, from clock skew)
  /// elapsed values: rates are reported as 0 rather than inf/NaN.
  void set_rate(double elapsed);

  /// One-line-per-field human summary plus a per-shard table.
  void print(std::ostream& os) const;

  /// Compact single-object JSON (per-shard stats inlined as an array).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace she::runtime
