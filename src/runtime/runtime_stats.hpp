// RuntimeStats — observability report for the ingest pipeline.
//
// A plain-struct *view* over the pipeline's metric registry: counters live
// in obs::Counter/Gauge objects updated on the hot paths, and
// IngestPipeline::stats() reads them into this snapshot.  The JSON form is
// what `she_tool pipeline --json` and bench/pipeline_throughput emit so
// runs are machine-comparable; `schema_version` lets downstream
// comparisons evolve with the field set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace she::runtime {

struct ShardStats {
  std::uint64_t inserted = 0;   ///< items drained into the estimator
  std::uint64_t dropped = 0;    ///< pushes rejected (DropNewest / dead shard)
  std::uint64_t drains = 0;     ///< non-empty drain sweeps
  std::uint64_t publishes = 0;  ///< snapshot publications
  std::uint64_t queue_hwm = 0;  ///< deepest single ring observed
  std::uint64_t restarts = 0;   ///< supervised worker restarts
  std::uint64_t faults = 0;     ///< worker exceptions caught
  std::uint64_t lost = 0;       ///< items rolled back to the last snapshot
  std::uint64_t replayed = 0;   ///< ring backlog re-drained after a restart
  std::uint64_t checkpoints = 0;  ///< durable checkpoint frames written
};

struct RuntimeStats {
  /// Bumped whenever the JSON field set changes: 1 = seed layout,
  /// 2 = adds schema_version itself and the registry-backed counters,
  /// 3 = adds producer backpressure stalls (stall_ns, stall_events),
  /// 4 = adds fault tolerance (worker_restarts/faults/wedged, items_lost,
  ///     items_replayed, checkpoints, push_timeouts) and the windowed rate
  ///     view (recent_items_per_sec, rate_window_s).
  static constexpr int kSchemaVersion = 4;

  std::size_t shards = 0;
  std::size_t producers = 0;
  std::uint64_t produced = 0;   ///< accepted pushes across producers
  std::uint64_t inserted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t drains = 0;
  std::uint64_t publishes = 0;
  std::uint64_t queue_hwm = 0;  ///< max over shards
  std::uint64_t stall_ns = 0;   ///< producer spin time on full rings (Block)
  std::uint64_t stall_events = 0;  ///< full-ring stall episodes (Block)
  std::uint64_t push_timeouts = 0;  ///< kBlockTimeout pushes that gave up
  std::uint64_t worker_restarts = 0;  ///< supervised restarts across shards
  std::uint64_t worker_faults = 0;    ///< worker exceptions across shards
  std::uint64_t worker_wedged = 0;    ///< heartbeat-stale episodes detected
  std::uint64_t items_lost = 0;       ///< rolled back at faulted restarts
  std::uint64_t items_replayed = 0;   ///< ring backlog re-drained at restarts
  std::uint64_t checkpoints = 0;      ///< durable checkpoint frames written
  double elapsed_seconds = 0;   ///< start() until close() (or stats() call)
  double items_per_sec = 0;     ///< inserted / elapsed (whole-run average)
  double recent_items_per_sec = 0;  ///< windowed rate (last rate_window_s s)
  std::uint64_t rate_window_s = 0;  ///< width of the windowed-rate view
  std::vector<ShardStats> per_shard;

  /// Record the elapsed time and derive items_per_sec from `inserted`,
  /// guarding against zero/near-zero (or negative, from clock skew)
  /// elapsed values: rates are reported as 0 rather than inf/NaN.
  void set_rate(double elapsed);

  /// One-line-per-field human summary plus a per-shard table.
  void print(std::ostream& os) const;

  /// Compact single-object JSON (per-shard stats inlined as an array).
  [[nodiscard]] std::string to_json() const;
};

/// Sliding-window rate estimator behind RuntimeStats::recent_items_per_sec:
/// feed (timestamp, monotone total) samples, read the rate over the
/// retained window.  A restart-induced throughput dip is visible here long
/// after the whole-run average has smoothed it away.  Not thread-safe —
/// the pipeline serializes access externally.
class RateWindow {
 public:
  explicit RateWindow(std::uint64_t window_seconds)
      : window_ns_(static_cast<std::int64_t>(window_seconds) * 1'000'000'000) {}

  /// Record `total` items as of `now_ns`, discarding samples that fell out
  /// of the window.  Timestamps must be monotone.
  void sample(std::int64_t now_ns, std::uint64_t total);

  /// Items/s between the oldest retained and the newest sample; 0 until
  /// two samples span a nonzero interval.
  [[nodiscard]] double rate() const;

 private:
  std::int64_t window_ns_;
  std::deque<std::pair<std::int64_t, std::uint64_t>> samples_;
};

}  // namespace she::runtime
