// RuntimeStats — observability report for the ingest pipeline.
//
// Counters are accumulated with relaxed atomics on the hot paths and
// collected into this plain struct by IngestPipeline::stats(); the JSON
// form is what `she_tool pipeline --json` and bench/pipeline_throughput
// emit so runs are machine-comparable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace she::runtime {

struct ShardStats {
  std::uint64_t inserted = 0;   ///< items drained into the estimator
  std::uint64_t dropped = 0;    ///< pushes rejected under DropNewest
  std::uint64_t drains = 0;     ///< non-empty drain sweeps
  std::uint64_t publishes = 0;  ///< snapshot publications
  std::uint64_t queue_hwm = 0;  ///< deepest single ring observed
};

struct RuntimeStats {
  std::size_t shards = 0;
  std::size_t producers = 0;
  std::uint64_t produced = 0;   ///< accepted pushes across producers
  std::uint64_t inserted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t drains = 0;
  std::uint64_t publishes = 0;
  std::uint64_t queue_hwm = 0;  ///< max over shards
  double elapsed_seconds = 0;   ///< start() until close() (or stats() call)
  double items_per_sec = 0;     ///< inserted / elapsed
  std::vector<ShardStats> per_shard;

  /// One-line-per-field human summary plus a per-shard table.
  void print(std::ostream& os) const;

  /// Compact single-object JSON (per-shard stats inlined as an array).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace she::runtime
