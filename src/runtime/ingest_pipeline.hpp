// IngestPipeline — lock-free shard pipelines with queries under load.
//
// The hardware pipeline sustains one item per cycle because insertion and
// lazy cleaning are single-stage operations; this is the CPU serving-path
// analogue.  N producer threads route keys by the same hash Sharded<T>
// uses (so accuracy semantics carry over) into per-(producer, shard) SPSC
// rings; each shard worker thread exclusively owns one estimator, drains
// its rings in batches, and publishes a seqlock-versioned snapshot every
// `publish_interval` items.  Producers never block on estimator state, and
// queries run concurrently against the snapshots:
//
//   producer p ──ring[p][s]──▶ worker s ──owns──▶ Estimator s
//                                   └─publishes──▶ SeqlockSlot s ◀─readers
//
// Backpressure on a full ring is explicit: `Block` (spin-yield until space;
// never loses an accepted item) or `DropNewest` (reject the push, counted
// per shard).  RuntimeStats reports items/sec, drops, drains, publishes
// and queue-depth high-water marks.
//
// Estimator requirements: movable, `insert(uint64_t)`,
// `save(BinaryWriter&) const`, `static load(BinaryReader&)`.  Every SHE
// estimator and StreamMonitor qualifies.
//
// Threading contract:
//   * push(producer, key): producer `p`'s pushes must be serialized (one
//     thread per producer index); different producers are independent.
//   * snapshot()/stats()/shard_of(): any thread, any time.
//   * start()/close(): one controlling thread; do not call push()
//     concurrently with close() — join your producers first.  close() on
//     a never-started pipeline drains the queues inline.
//
// Ordering: with a single producer, per-shard insertion order equals
// arrival order, so the result is bit-identical to sequential routing
// through Sharded<T> (tested).  With several producers the per-shard
// interleaving is nondeterministic, like any concurrent ingest.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/bobhash.hpp"
#include "runtime/ring_buffer.hpp"
#include "runtime/runtime_stats.hpp"
#include "runtime/snapshot.hpp"

namespace she::runtime {

/// What a producer does when its ring to the owning shard is full.
enum class Backpressure {
  kBlock,       ///< spin-yield until space; lossless
  kDropNewest,  ///< reject the new item, count it in the shard's drop counter
};

[[nodiscard]] const char* to_string(Backpressure p);
/// Parse "block" / "drop" (case-sensitive); throws std::invalid_argument.
[[nodiscard]] Backpressure backpressure_from(const std::string& name);

struct PipelineOptions {
  std::size_t shards = 1;
  std::size_t producers = 1;
  std::size_t queue_capacity = 1024;   ///< per (producer, shard) ring
  std::size_t drain_batch = 256;       ///< max items popped per ring visit
  std::size_t publish_interval = 2048; ///< items between snapshot publishes
  Backpressure policy = Backpressure::kBlock;
  std::uint64_t route_seed = 0x5ead5eedULL;  ///< Sharded's default
  std::size_t snapshot_slack_bytes = 4096;   ///< slot headroom over 2x image

  void validate() const;  ///< throws std::invalid_argument on bad fields
};

template <typename Estimator>
class IngestPipeline {
 public:
  using Factory = std::function<Estimator(std::size_t)>;

  /// Builds `opt.shards` estimators via `factory(shard_index)` and
  /// publishes their initial snapshots; workers start with start().
  IngestPipeline(const PipelineOptions& opt, const Factory& factory)
      : opt_(opt) {
    opt_.validate();
    std::vector<char> image;
    shards_.reserve(opt_.shards);
    for (std::size_t s = 0; s < opt_.shards; ++s) {
      auto sh = std::make_unique<Shard>(factory(s));
      serialize_to(image, sh->est);
      sh->snap = std::make_unique<SeqlockSlot>(2 * image.size() +
                                               opt_.snapshot_slack_bytes);
      sh->snap->publish(image.data(), image.size());
      sh->rings.reserve(opt_.producers);
      for (std::size_t p = 0; p < opt_.producers; ++p)
        sh->rings.push_back(std::make_unique<SpscRing>(opt_.queue_capacity));
      shards_.push_back(std::move(sh));
    }
    produced_ = std::vector<PaddedCounter>(opt_.producers);
    start_ns_.store(now_ns(), std::memory_order_relaxed);
  }

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  ~IngestPipeline() { close(); }

  [[nodiscard]] const PipelineOptions& options() const { return opt_; }
  [[nodiscard]] std::size_t shard_count() const { return opt_.shards; }

  /// Same routing as Sharded<T> with the same seed.
  [[nodiscard]] std::size_t shard_of(std::uint64_t key) const {
    return static_cast<std::size_t>(hash64(key, opt_.route_seed) % opt_.shards);
  }

  /// Launch one worker thread per shard.
  void start() {
    if (started_.load(std::memory_order_relaxed))
      throw std::logic_error("IngestPipeline: already started");
    if (closed_.load(std::memory_order_relaxed))
      throw std::logic_error("IngestPipeline: already closed");
    started_.store(true, std::memory_order_relaxed);
    start_ns_.store(now_ns(), std::memory_order_relaxed);
    workers_.reserve(opt_.shards);
    for (std::size_t s = 0; s < opt_.shards; ++s)
      workers_.emplace_back([this, s] { worker_loop(s); });
  }

  /// Route one key from producer `producer` to its shard's ring.
  /// Returns false iff the item was not accepted (DropNewest and the ring
  /// is full, or the pipeline is closing).
  bool push(std::size_t producer, std::uint64_t key) {
    Shard& sh = *shards_[shard_of(key)];
    SpscRing& ring = *sh.rings[producer];
    if (!accepting_.load(std::memory_order_acquire)) return false;
    if (!ring.try_push(key)) {
      if (opt_.policy == Backpressure::kDropNewest) {
        sh.dropped.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      do {
        if (!accepting_.load(std::memory_order_acquire)) return false;
        std::this_thread::yield();
      } while (!ring.try_push(key));
    }
    produced_[producer].value.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// push() each key in order; returns how many were accepted.
  std::size_t push_bulk(std::size_t producer,
                        std::span<const std::uint64_t> keys) {
    std::size_t accepted = 0;
    for (std::uint64_t k : keys) accepted += push(producer, k) ? 1 : 0;
    return accepted;
  }

  /// Stop accepting, drain every ring, publish final snapshots, join
  /// workers.  Idempotent.  If start() was never called the queues are
  /// drained inline on the calling thread.
  void close() {
    if (closed_.load(std::memory_order_relaxed)) return;
    accepting_.store(false, std::memory_order_release);
    stopping_.store(true, std::memory_order_release);
    if (started_.load(std::memory_order_relaxed)) {
      for (auto& t : workers_) t.join();
      workers_.clear();
    } else {
      for (std::size_t s = 0; s < opt_.shards; ++s) worker_loop(s);
    }
    closed_.store(true, std::memory_order_relaxed);
    stop_ns_.store(now_ns(), std::memory_order_relaxed);
  }

  /// A private copy of shard `s`'s latest published estimator state.
  /// Callable from any thread at any time.
  [[nodiscard]] Estimator snapshot(std::size_t s) const {
    std::vector<char> buf;
    shards_[s]->snap->read(buf);
    return deserialize<Estimator>(buf.data(), buf.size());
  }

  /// The raw slot, for SnapshotReader-style cached readers.
  [[nodiscard]] const SeqlockSlot& snapshot_slot(std::size_t s) const {
    return *shards_[s]->snap;
  }

  [[nodiscard]] RuntimeStats stats() const {
    RuntimeStats st;
    st.shards = opt_.shards;
    st.producers = opt_.producers;
    st.per_shard.reserve(opt_.shards);
    for (const auto& sh : shards_) {
      ShardStats ss;
      ss.inserted = sh->inserted.load(std::memory_order_relaxed);
      ss.dropped = sh->dropped.load(std::memory_order_relaxed);
      ss.drains = sh->drains.load(std::memory_order_relaxed);
      ss.publishes = sh->publishes.load(std::memory_order_relaxed);
      ss.queue_hwm = sh->queue_hwm.load(std::memory_order_relaxed);
      st.inserted += ss.inserted;
      st.dropped += ss.dropped;
      st.drains += ss.drains;
      st.publishes += ss.publishes;
      st.queue_hwm = std::max(st.queue_hwm, ss.queue_hwm);
      st.per_shard.push_back(ss);
    }
    for (const auto& c : produced_)
      st.produced += c.value.load(std::memory_order_relaxed);
    const std::int64_t start = start_ns_.load(std::memory_order_relaxed);
    const std::int64_t stop = closed_.load(std::memory_order_relaxed)
                                  ? stop_ns_.load(std::memory_order_relaxed)
                                  : now_ns();
    st.elapsed_seconds = static_cast<double>(stop - start) / 1e9;
    if (st.elapsed_seconds > 0)
      st.items_per_sec = static_cast<double>(st.inserted) / st.elapsed_seconds;
    return st;
  }

 private:
  struct PaddedCounter {
    alignas(kCacheLine) std::atomic<std::uint64_t> value{0};
  };

  struct Shard {
    explicit Shard(Estimator e) : est(std::move(e)) {}
    Estimator est;  ///< worker-owned once start() runs
    std::unique_ptr<SeqlockSlot> snap;
    std::vector<std::unique_ptr<SpscRing>> rings;  ///< one per producer
    std::vector<char> scratch;                     ///< worker-only
    std::uint64_t since_publish = 0;               ///< worker-only
    std::uint64_t hwm_local = 0;                   ///< worker-only mirror
    alignas(kCacheLine) std::atomic<std::uint64_t> inserted{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> drains{0};
    std::atomic<std::uint64_t> publishes{0};
    std::atomic<std::uint64_t> queue_hwm{0};
  };

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void publish(Shard& sh) {
    serialize_to(sh.scratch, sh.est);
    sh.snap->publish(sh.scratch.data(), sh.scratch.size());
    sh.publishes.fetch_add(1, std::memory_order_relaxed);
    sh.since_publish = 0;
  }

  void worker_loop(std::size_t si) {
    Shard& sh = *shards_[si];
    std::vector<std::uint64_t> buf(opt_.drain_batch);
    for (;;) {
      std::size_t got = 0;
      for (auto& ring_ptr : sh.rings) {
        SpscRing& ring = *ring_ptr;
        const std::size_t depth = ring.size_approx();
        if (depth > sh.hwm_local) {
          sh.hwm_local = depth;
          sh.queue_hwm.store(depth, std::memory_order_relaxed);
        }
        std::size_t n;
        while ((n = ring.drain(buf.data(), buf.size())) > 0) {
          for (std::size_t i = 0; i < n; ++i) sh.est.insert(buf[i]);
          got += n;
          if (n < buf.size()) break;  // ring (momentarily) empty; next ring
        }
      }
      if (got > 0) {
        sh.inserted.fetch_add(got, std::memory_order_relaxed);
        sh.drains.fetch_add(1, std::memory_order_relaxed);
        sh.since_publish += got;
        if (sh.since_publish >= opt_.publish_interval) publish(sh);
        continue;
      }
      // Idle: surface whatever arrived since the last publish so readers
      // see a fresh snapshot even in quiet periods.
      if (sh.since_publish > 0) publish(sh);
      if (stopping_.load(std::memory_order_acquire) && rings_empty(sh)) break;
      std::this_thread::yield();
    }
    publish(sh);  // final state, unconditionally
  }

  [[nodiscard]] static bool rings_empty(const Shard& sh) {
    for (const auto& r : sh.rings)
      if (r->size_approx() > 0) return false;
    return true;
  }

  PipelineOptions opt_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<PaddedCounter> produced_;
  std::vector<std::thread> workers_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> closed_{false};
  std::atomic<std::int64_t> start_ns_{0};
  std::atomic<std::int64_t> stop_ns_{0};
};

}  // namespace she::runtime
