// IngestPipeline — lock-free shard pipelines with queries under load.
//
// The hardware pipeline sustains one item per cycle because insertion and
// lazy cleaning are single-stage operations; this is the CPU serving-path
// analogue.  N producer threads route keys by the same hash Sharded<T>
// uses (so accuracy semantics carry over) into per-(producer, shard) SPSC
// rings; each shard worker thread exclusively owns one estimator, drains
// its rings in batches, and publishes a seqlock-versioned snapshot every
// `publish_interval` items.  Producers never block on estimator state, and
// queries run concurrently against the snapshots:
//
//   producer p ──ring[p][s]──▶ worker s ──owns──▶ Estimator s
//                                   └─publishes──▶ SeqlockSlot s ◀─readers
//
// Backpressure on a full ring is explicit: `Block` (spin-yield until space;
// never loses an accepted item) or `DropNewest` (reject the push, counted
// per shard).
//
// Observability: every pipeline owns a private obs::Registry (always on,
// independent of the global obs::enabled() toggle) holding the per-shard
// counters, drain/publish latency histograms, queue-depth gauges and
// backpressure stall time; RuntimeStats is a plain-struct view over it
// (see stats()).  Push latency is sampled (1 in 64) only while the global
// telemetry toggle is enabled, so the producer hot path stays one ring
// push + one counter increment otherwise.  An optional sampler thread
// (PipelineOptions::sample_interval_ms) refreshes the queue-depth gauges
// during quiet periods.
//
// Estimator requirements: movable, `insert(uint64_t)`,
// `save(BinaryWriter&) const`, `static load(BinaryReader&)`.  Every SHE
// estimator and StreamMonitor qualifies.  Estimators additionally exposing
// `insert_batch(std::span<const uint64_t>)` (all of the above do) get the
// hash-ahead + prefetch batch path on the worker drain: each drained ring
// block is applied as one pipelined batch, which hides the per-key memory
// latency that otherwise caps drain throughput on large tables.
//
// Threading contract:
//   * push(producer, key): producer `p`'s pushes must be serialized (one
//     thread per producer index); different producers are independent.
//   * snapshot()/stats()/shard_of()/metrics_registry(): any thread, any
//     time.
//   * start()/close(): one controlling thread; do not call push()
//     concurrently with close() — join your producers first.  close() on
//     a never-started pipeline drains the queues inline.
//
// Ordering: with a single producer, per-shard insertion order equals
// arrival order, so the result is bit-identical to sequential routing
// through Sharded<T> (tested).  With several producers the per-shard
// interleaving is nondeterministic, like any concurrent ingest.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/bobhash.hpp"
#include "obs/metrics.hpp"
#include "runtime/ring_buffer.hpp"
#include "runtime/runtime_stats.hpp"
#include "runtime/snapshot.hpp"

namespace she::runtime {

/// What a producer does when its ring to the owning shard is full.
enum class Backpressure {
  kBlock,       ///< spin-yield until space; lossless
  kDropNewest,  ///< reject the new item, count it in the shard's drop counter
};

[[nodiscard]] const char* to_string(Backpressure p);
/// Parse "block" / "drop" (case-sensitive); throws std::invalid_argument.
[[nodiscard]] Backpressure backpressure_from(const std::string& name);

struct PipelineOptions {
  std::size_t shards = 1;
  std::size_t producers = 1;
  std::size_t queue_capacity = 1024;   ///< per (producer, shard) ring
  std::size_t drain_batch = 256;       ///< max items popped per ring visit
  std::size_t publish_interval = 2048; ///< items between snapshot publishes
  Backpressure policy = Backpressure::kBlock;
  std::uint64_t route_seed = 0x5ead5eedULL;  ///< Sharded's default
  std::size_t snapshot_slack_bytes = 4096;   ///< slot headroom over 2x image
  std::size_t sample_interval_ms = 0;  ///< queue-depth sampler period; 0 = no
                                       ///< background sampler thread

  void validate() const;  ///< throws std::invalid_argument on bad fields
};

template <typename Estimator>
class IngestPipeline {
 public:
  using Factory = std::function<Estimator(std::size_t)>;

  /// Builds `opt.shards` estimators via `factory(shard_index)` and
  /// publishes their initial snapshots; workers start with start().
  IngestPipeline(const PipelineOptions& opt, const Factory& factory)
      : opt_(opt) {
    opt_.validate();
    drain_hist_ = &registry_.histogram(
        "she_pipeline_drain_latency_ns",
        "wall time of one non-empty ring drain sweep, ns");
    publish_hist_ = &registry_.histogram(
        "she_pipeline_publish_latency_ns",
        "serialize + seqlock publish of one shard snapshot, ns");
    push_hist_ = &registry_.histogram(
        "she_pipeline_push_latency_ns",
        "producer push() wall time, 1-in-64 sampled while telemetry is "
        "enabled, ns");
    stall_ns_ = &registry_.counter(
        "she_pipeline_stall_ns_total",
        "producer time spent spin-yielding on full rings (Block policy), ns");
    stall_events_ = &registry_.counter(
        "she_pipeline_stall_events_total",
        "full-ring stall episodes entered by producers (Block policy)");
    std::vector<char> image;
    shards_.reserve(opt_.shards);
    for (std::size_t s = 0; s < opt_.shards; ++s) {
      auto sh = std::make_unique<Shard>(factory(s));
      bind_metrics(*sh, s);
      serialize_to(image, sh->est);
      sh->snap = std::make_unique<SeqlockSlot>(2 * image.size() +
                                               opt_.snapshot_slack_bytes);
      sh->snap->publish(image.data(), image.size());
      sh->rings.reserve(opt_.producers);
      for (std::size_t p = 0; p < opt_.producers; ++p)
        sh->rings.push_back(std::make_unique<SpscRing>(opt_.queue_capacity));
      shards_.push_back(std::move(sh));
    }
    produced_.reserve(opt_.producers);
    for (std::size_t p = 0; p < opt_.producers; ++p)
      produced_.push_back(&registry_.counter(
          "she_pipeline_produced_total", "accepted pushes per producer",
          {{"producer", std::to_string(p)}}));
    start_ns_.store(now_ns(), std::memory_order_relaxed);
  }

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  ~IngestPipeline() { close(); }

  [[nodiscard]] const PipelineOptions& options() const { return opt_; }
  [[nodiscard]] std::size_t shard_count() const { return opt_.shards; }

  /// Same routing as Sharded<T> with the same seed.
  [[nodiscard]] std::size_t shard_of(std::uint64_t key) const {
    return static_cast<std::size_t>(hash64(key, opt_.route_seed) % opt_.shards);
  }

  /// Launch one worker thread per shard (plus the queue-depth sampler when
  /// configured).
  void start() {
    if (started_.load(std::memory_order_relaxed))
      throw std::logic_error("IngestPipeline: already started");
    if (closed_.load(std::memory_order_relaxed))
      throw std::logic_error("IngestPipeline: already closed");
    started_.store(true, std::memory_order_relaxed);
    start_ns_.store(now_ns(), std::memory_order_relaxed);
    workers_.reserve(opt_.shards);
    for (std::size_t s = 0; s < opt_.shards; ++s)
      workers_.emplace_back([this, s] { worker_loop(s); });
    if (opt_.sample_interval_ms > 0)
      sampler_ = std::thread([this] { sampler_loop(); });
  }

  /// Route one key from producer `producer` to its shard's ring.
  /// Returns false iff the item was not accepted (DropNewest and the ring
  /// is full, or the pipeline is closing).
  bool push(std::size_t producer, std::uint64_t key) {
    thread_local std::uint64_t push_seq = 0;
    const bool timed = obs::enabled() && ((++push_seq & 63u) == 0);
    const std::int64_t t0 = timed ? now_ns() : 0;
    Shard& sh = *shards_[shard_of(key)];
    SpscRing& ring = *sh.rings[producer];
    if (!accepting_.load(std::memory_order_acquire)) return false;
    if (!ring.try_push(key)) {
      if (opt_.policy == Backpressure::kDropNewest) {
        sh.dropped->inc();
        return false;
      }
      const std::int64_t stall_start = now_ns();
      stall_events_->inc();  // one episode, however long the spin lasts
      for (;;) {
        if (!accepting_.load(std::memory_order_acquire)) {
          stall_ns_->inc(static_cast<std::uint64_t>(now_ns() - stall_start));
          return false;
        }
        std::this_thread::yield();
        if (ring.try_push(key)) break;
      }
      stall_ns_->inc(static_cast<std::uint64_t>(now_ns() - stall_start));
    }
    produced_[producer]->inc();
    if (timed)
      push_hist_->observe(static_cast<std::uint64_t>(now_ns() - t0));
    return true;
  }

  /// push() each key in order; returns how many were accepted.
  std::size_t push_bulk(std::size_t producer,
                        std::span<const std::uint64_t> keys) {
    std::size_t accepted = 0;
    for (std::uint64_t k : keys) accepted += push(producer, k) ? 1 : 0;
    return accepted;
  }

  /// Stop accepting, drain every ring, publish final snapshots, join
  /// workers.  Idempotent.  If start() was never called the queues are
  /// drained inline on the calling thread.
  void close() {
    if (closed_.load(std::memory_order_relaxed)) return;
    accepting_.store(false, std::memory_order_release);
    stopping_.store(true, std::memory_order_release);
    if (started_.load(std::memory_order_relaxed)) {
      for (auto& t : workers_) t.join();
      workers_.clear();
      if (sampler_.joinable()) sampler_.join();
    } else {
      for (std::size_t s = 0; s < opt_.shards; ++s) worker_loop(s);
    }
    closed_.store(true, std::memory_order_relaxed);
    stop_ns_.store(now_ns(), std::memory_order_relaxed);
  }

  /// A private copy of shard `s`'s latest published estimator state.
  /// Callable from any thread at any time.
  [[nodiscard]] Estimator snapshot(std::size_t s) const {
    std::vector<char> buf;
    shards_[s]->snap->read(buf);
    return deserialize<Estimator>(buf.data(), buf.size());
  }

  /// The raw slot, for SnapshotReader-style cached readers.
  [[nodiscard]] const SeqlockSlot& snapshot_slot(std::size_t s) const {
    return *shards_[s]->snap;
  }

  /// The pipeline's private metric registry (always on); export it with
  /// obs::write_prometheus / obs::write_json, typically alongside
  /// obs::default_registry().
  [[nodiscard]] const obs::Registry& metrics_registry() const {
    return registry_;
  }

  /// Plain-struct view over the registry counters (see RuntimeStats).
  [[nodiscard]] RuntimeStats stats() const {
    RuntimeStats st;
    st.shards = opt_.shards;
    st.producers = opt_.producers;
    st.per_shard.reserve(opt_.shards);
    for (const auto& sh : shards_) {
      ShardStats ss;
      ss.inserted = sh->inserted->value();
      ss.dropped = sh->dropped->value();
      ss.drains = sh->drains->value();
      ss.publishes = sh->publishes->value();
      ss.queue_hwm = static_cast<std::uint64_t>(sh->queue_hwm->value());
      st.inserted += ss.inserted;
      st.dropped += ss.dropped;
      st.drains += ss.drains;
      st.publishes += ss.publishes;
      st.queue_hwm = std::max(st.queue_hwm, ss.queue_hwm);
      st.per_shard.push_back(ss);
    }
    for (const obs::Counter* c : produced_) st.produced += c->value();
    st.stall_ns = stall_ns_->value();
    st.stall_events = stall_events_->value();
    const std::int64_t start = start_ns_.load(std::memory_order_relaxed);
    const std::int64_t stop = closed_.load(std::memory_order_relaxed)
                                  ? stop_ns_.load(std::memory_order_relaxed)
                                  : now_ns();
    st.set_rate(static_cast<double>(stop - start) / 1e9);
    return st;
  }

 private:
  struct Shard {
    explicit Shard(Estimator e) : est(std::move(e)) {}
    Estimator est;  ///< worker-owned once start() runs
    std::unique_ptr<SeqlockSlot> snap;
    std::vector<std::unique_ptr<SpscRing>> rings;  ///< one per producer
    std::vector<char> scratch;                     ///< worker-only
    std::uint64_t since_publish = 0;               ///< worker-only
    std::uint64_t hwm_local = 0;                   ///< worker-only mirror
    // Registry-owned metrics (see bind_metrics); plain pointers, the
    // registry outlives the shards.
    obs::Counter* inserted = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* drains = nullptr;
    obs::Counter* publishes = nullptr;
    obs::Gauge* queue_hwm = nullptr;
    obs::Gauge* queue_depth = nullptr;
  };

  void bind_metrics(Shard& sh, std::size_t s) {
    const obs::Labels shard_label = {{"shard", std::to_string(s)}};
    sh.inserted = &registry_.counter("she_pipeline_inserted_total",
                                     "items drained into the estimator",
                                     shard_label);
    sh.dropped = &registry_.counter("she_pipeline_dropped_total",
                                    "pushes rejected under DropNewest",
                                    shard_label);
    sh.drains = &registry_.counter("she_pipeline_drains_total",
                                   "non-empty drain sweeps", shard_label);
    sh.publishes = &registry_.counter("she_pipeline_publishes_total",
                                      "snapshot publications", shard_label);
    sh.queue_hwm = &registry_.gauge("she_pipeline_queue_hwm",
                                    "deepest single ring observed",
                                    shard_label);
    sh.queue_depth = &registry_.gauge(
        "she_pipeline_queue_depth",
        "queued items across the shard's rings (sweep/sampler refreshed)",
        shard_label);
  }

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void publish(Shard& sh) {
    const std::int64_t t0 = now_ns();
    serialize_to(sh.scratch, sh.est);
    sh.snap->publish(sh.scratch.data(), sh.scratch.size());
    publish_hist_->observe(static_cast<std::uint64_t>(now_ns() - t0));
    sh.publishes->inc();
    sh.since_publish = 0;
  }

  void worker_loop(std::size_t si) {
    Shard& sh = *shards_[si];
    std::vector<std::uint64_t> buf(opt_.drain_batch);
    for (;;) {
      const std::int64_t sweep_start = now_ns();
      std::size_t got = 0;
      std::size_t depth_total = 0;
      for (auto& ring_ptr : sh.rings) {
        SpscRing& ring = *ring_ptr;
        const std::size_t depth = ring.size_approx();
        depth_total += depth;
        if (depth > sh.hwm_local) {
          sh.hwm_local = depth;
          sh.queue_hwm->max_of(static_cast<std::int64_t>(depth));
        }
        std::size_t n;
        while ((n = ring.drain(buf.data(), buf.size())) > 0) {
          const std::span<const std::uint64_t> block(buf.data(), n);
          if constexpr (requires { sh.est.insert_batch(block); })
            sh.est.insert_batch(block);  // pipelined hash-ahead + prefetch
          else
            for (std::size_t i = 0; i < n; ++i) sh.est.insert(buf[i]);
          got += n;
          if (n < buf.size()) break;  // ring (momentarily) empty; next ring
        }
      }
      sh.queue_depth->set(static_cast<std::int64_t>(depth_total));
      if (got > 0) {
        drain_hist_->observe(static_cast<std::uint64_t>(now_ns() - sweep_start));
        sh.inserted->inc(got);
        sh.drains->inc();
        sh.since_publish += got;
        if (sh.since_publish >= opt_.publish_interval) publish(sh);
        continue;
      }
      // Idle: surface whatever arrived since the last publish so readers
      // see a fresh snapshot even in quiet periods.
      if (sh.since_publish > 0) publish(sh);
      if (stopping_.load(std::memory_order_acquire) && rings_empty(sh)) break;
      std::this_thread::yield();
    }
    publish(sh);  // final state, unconditionally
  }

  /// Periodically refresh the queue-depth gauges (and high-water marks) so
  /// scrapes see backlog even when a worker is wedged inside a long drain.
  void sampler_loop() {
    const auto interval = std::chrono::milliseconds(opt_.sample_interval_ms);
    while (!stopping_.load(std::memory_order_acquire)) {
      for (const auto& sh : shards_) {
        std::size_t depth_total = 0;
        std::size_t deepest = 0;
        for (const auto& r : sh->rings) {
          const std::size_t d = r->size_approx();
          depth_total += d;
          deepest = std::max(deepest, d);
        }
        sh->queue_depth->set(static_cast<std::int64_t>(depth_total));
        sh->queue_hwm->max_of(static_cast<std::int64_t>(deepest));
      }
      // Sleep in small slices so close() is never delayed by a long period.
      auto remaining = interval;
      while (remaining.count() > 0 &&
             !stopping_.load(std::memory_order_acquire)) {
        const auto slice = std::min(remaining, std::chrono::milliseconds(5));
        std::this_thread::sleep_for(slice);
        remaining -= slice;
      }
    }
  }

  [[nodiscard]] static bool rings_empty(const Shard& sh) {
    for (const auto& r : sh.rings)
      if (r->size_approx() > 0) return false;
    return true;
  }

  PipelineOptions opt_;
  obs::Registry registry_;  ///< declared before anything holding handles
  obs::Histogram* drain_hist_ = nullptr;
  obs::Histogram* publish_hist_ = nullptr;
  obs::Histogram* push_hist_ = nullptr;
  obs::Counter* stall_ns_ = nullptr;
  obs::Counter* stall_events_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<obs::Counter*> produced_;  ///< one per producer
  std::vector<std::thread> workers_;
  std::thread sampler_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> closed_{false};
  std::atomic<std::int64_t> start_ns_{0};
  std::atomic<std::int64_t> stop_ns_{0};
};

}  // namespace she::runtime
