// IngestPipeline — lock-free shard pipelines with queries under load and
// fault-tolerant operation.
//
// The hardware pipeline sustains one item per cycle because insertion and
// lazy cleaning are single-stage operations; this is the CPU serving-path
// analogue.  N producer threads route keys by the same hash Sharded<T>
// uses (so accuracy semantics carry over) into per-(producer, shard) SPSC
// rings; each shard worker thread exclusively owns one estimator, drains
// its rings in batches, and publishes a seqlock-versioned snapshot every
// `publish_interval` items.  Producers never block on estimator state, and
// queries run concurrently against the snapshots:
//
//   producer p ──ring[p][s]──▶ worker s ──owns──▶ Estimator s
//                                   └─publishes──▶ SeqlockSlot s ◀─readers
//                                   └─checkpoints─▶ shard-s.ckpt (durable)
//
// Backpressure on a full ring is explicit: `Block` (spin-yield until
// space; never loses an accepted item), `DropNewest` (reject the push,
// counted per shard), or `BlockTimeout` (spin with exponential backoff up
// to `push_timeout_ms`, then fail the push explicitly — bounded worst-case
// latency instead of hanging forever behind a dead consumer).
//
// Fault tolerance (docs/INTERNALS.md §10):
//   * Durable checkpoints: with `checkpoint_dir` set, each worker writes
//     its just-published snapshot into a CRC32-framed file (atomic
//     write-rename, common/checkpoint.hpp) every `checkpoint_interval`
//     items and at close.  `resume = true` reloads those frames at
//     construction — corrupted or truncated files are rejected with a
//     typed CheckpointError, never loaded silently — and records the
//     per-shard stream offsets (`resume_offset()`) so a driver can skip
//     the already-ingested per-shard prefix of its trace.
//   * Supervision: with `supervise = true`, a supervisor thread restarts
//     workers that died by exception (rolled back to the shard's last
//     published snapshot; items applied since are counted lost, ring
//     backlog counted replayed) and fences workers whose heartbeat went
//     stale (`heartbeat_timeout_ms`) so a wedged-but-cooperative worker
//     hands its shard over losslessly.  Restarts are capped at
//     `max_restarts` per shard; beyond it the shard is abandoned and
//     pushes to it fail fast.
//   * Write-ahead backlog log (common/wal.hpp): checkpoints capture the
//     drained prefix, but items *accepted and still queued* used to be
//     lost by design at a crash.  With `wal_mode != kOff`, each accepted
//     per-shard sub-batch commits through the shard's WAL lane
//     (wal_push): one critical section that reserves ring space *first*
//     — a request deadline or BlockTimeout expiry sheds the batch before
//     anything reaches the log — then appends it to
//     `<checkpoint_dir>/shard-<s>.wal` and enqueues it whole, in log
//     order, on ring 0 regardless of producer index.  Drain order
//     therefore equals log-append order, which is what lets the
//     checkpoint offset (a count of drained items) identify the exact
//     log prefix a checkpoint covers: drain progress is the durable
//     low-water mark that retires frames at compaction, and resume
//     replays the logged suffix past the newest checkpoint — so kill -9
//     at any instant reconstructs the accepted stream byte-identically.
//     Only a terminally dead shard (faulted without a supervisor, or
//     abandoned) accepts batches into the log without enqueueing them;
//     that is safe because nothing drains or checkpoints there again,
//     so the logged tail surfaces, in order, at the next resume.  A
//     supervised restart's rollback gap (published snapshot .. consumed)
//     is healed back from the log instead of being counted lost.
//     Batches carrying a client identity (client_id, client_seq) are
//     deduplicated against a per-shard sequence table that survives
//     restarts inside the log, making client-side INSERT_BULK replay
//     exactly-once per shard.
//   * Fault injection: the deterministic hooks in
//     runtime/fault_injection.hpp (compiled out unless
//     SHE_FAULT_INJECTION) let tests and `she_tool pipeline --inject`
//     drive every one of those paths on purpose.
//
// Observability: every pipeline owns a private obs::Registry (always on,
// independent of the global obs::enabled() toggle) holding the per-shard
// counters, drain/publish latency histograms, queue-depth gauges,
// backpressure stall time, and the fault/recovery counters (restarts,
// faults, wedges, items lost/replayed, checkpoints, push timeouts);
// RuntimeStats is a plain-struct view over it (see stats()), including a
// windowed items/s rate (`rate_window_s`) that makes restart dips visible
// where the whole-run average would smooth them away.  Push latency is
// sampled (1 in 64) only while the global telemetry toggle is enabled, so
// the producer hot path stays one ring push + one counter increment
// otherwise.  An optional sampler thread
// (PipelineOptions::sample_interval_ms) refreshes the queue-depth gauges
// and the windowed rate during quiet periods.
//
// Estimator requirements: movable, `insert(uint64_t)`,
// `save(BinaryWriter&) const`, `static load(BinaryReader&)`.  Every SHE
// estimator and StreamMonitor qualifies.  Estimators additionally exposing
// `insert_batch(std::span<const uint64_t>)` (all of the above do) get the
// hash-ahead + prefetch batch path on the worker drain.
//
// Threading contract:
//   * push(producer, key): producer `p`'s pushes must be serialized (one
//     thread per producer index); different producers are independent.
//   * snapshot()/stats()/shard_of()/metrics_registry()/faulted():
//     any thread, any time.
//   * start()/close(): one controlling thread; do not call push()
//     concurrently with close() — join your producers first.  close() on
//     a never-started pipeline drains the queues inline.
//
// Ordering: with a single producer, per-shard insertion order equals
// arrival order, so the result is bit-identical to sequential routing
// through Sharded<T> (tested), and a checkpoint+resume replay that skips
// each shard's recorded prefix reproduces the unfaulted run byte for byte.
// With several producers and no WAL the per-shard interleaving is
// nondeterministic, like any concurrent ingest.  With the WAL on, all
// producers serialize through the shard's WAL lane and drain order equals
// log-append order regardless of producer count — the interleaving is
// whatever order the lane admitted the batches, and crash+resume
// reproduces exactly that order.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/bobhash.hpp"
#include "common/checkpoint.hpp"
#include "common/wal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/ring_buffer.hpp"
#include "runtime/runtime_stats.hpp"
#include "runtime/snapshot.hpp"

namespace she::runtime {

/// What a producer does when its ring to the owning shard is full.
enum class Backpressure {
  kBlock,        ///< spin-yield until space; lossless
  kDropNewest,   ///< reject the new item, count it in the shard's drop counter
  kBlockTimeout, ///< spin with exponential backoff, fail after push_timeout_ms
};

[[nodiscard]] const char* to_string(Backpressure p);
/// Parse "block" / "drop" / "block-timeout" (case-sensitive); throws
/// std::invalid_argument.
[[nodiscard]] Backpressure backpressure_from(const std::string& name);

/// A push was rejected because the pipeline is in degraded read-only mode
/// after a disk fault (ENOSPC/EIO from the WAL or checkpoint writer).
/// Queries and snapshots keep working; writes fail fast with this typed
/// error until a recovery probe finds the disk healthy again.
class DegradedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct PipelineOptions {
  std::size_t shards = 1;
  std::size_t producers = 1;
  std::size_t queue_capacity = 1024;   ///< per (producer, shard) ring
  std::size_t drain_batch = 256;       ///< max items popped per ring visit
  std::size_t publish_interval = 2048; ///< items between snapshot publishes
  Backpressure policy = Backpressure::kBlock;
  std::size_t push_timeout_ms = 100;   ///< kBlockTimeout: give up after this
  std::uint64_t route_seed = 0x5ead5eedULL;  ///< Sharded's default
  std::size_t snapshot_slack_bytes = 4096;   ///< slot headroom over 2x image
  std::size_t sample_interval_ms = 0;  ///< queue-depth sampler period; 0 = no
                                       ///< background sampler thread

  // Fault tolerance.
  bool supervise = false;              ///< restart faulted / fence wedged workers
  std::size_t heartbeat_timeout_ms = 250;  ///< wedged when heartbeat older
  std::size_t supervisor_interval_ms = 5;  ///< supervisor poll period
  std::size_t max_restarts = 16;       ///< per-shard cap before abandoning
  std::string checkpoint_dir;          ///< empty = no durable checkpoints
  std::uint64_t checkpoint_interval = 1u << 16;  ///< items between frames
  std::size_t checkpoint_keep = 1;     ///< retained frame generations per
                                       ///< shard (1 = overwrite in place)
  bool resume = false;                 ///< reload checkpoint_dir at startup
  std::size_t rate_window_s = 10;      ///< windowed items/s view width

  // Write-ahead backlog log (requires checkpoint_dir and a lossless
  // backpressure policy; see the class comment).
  WalMode wal_mode = WalMode::kOff;
  std::size_t wal_fsync_bytes = 0;     ///< kFsync group-commit bound;
                                       ///< 0 = fdatasync every append
  std::size_t wal_compact_bytes = std::size_t{4} << 20;  ///< rewrite floor

  /// Called after each durable WAL append with the shard index, the
  /// decoded frame, and its encoded bytes, under that shard's append
  /// lock (frames arrive in exact log order per shard).  Replication
  /// tails the pipeline through this; keep it cheap — enqueue, never
  /// block on a socket.
  std::function<void(std::size_t shard, const WalFrame& frame,
                     std::span<const char> encoded)>
      wal_observer;

  /// Degraded read-only mode: after a DiskFault from the WAL or
  /// checkpoint writer, at most one disk-recovery probe runs per this
  /// many milliseconds (on the push path); until one succeeds, writes
  /// throw DegradedError.
  std::size_t degraded_probe_ms = 1000;

  void validate() const;  ///< throws std::invalid_argument on bad fields
};

template <typename Estimator>
class IngestPipeline {
 public:
  using Factory = std::function<Estimator(std::size_t)>;

  /// Builds `opt.shards` estimators via `factory(shard_index)` — or, with
  /// `opt.resume`, from the shard's durable checkpoint when one exists
  /// (corrupt frames throw CheckpointError) — and publishes their initial
  /// snapshots; workers start with start().
  IngestPipeline(const PipelineOptions& opt, const Factory& factory)
      : opt_(opt), rate_window_(opt.rate_window_s) {
    opt_.validate();
    drain_hist_ = &registry_.histogram(
        "she_pipeline_drain_latency_ns",
        "wall time of one non-empty ring drain sweep, ns");
    publish_hist_ = &registry_.histogram(
        "she_pipeline_publish_latency_ns",
        "serialize + seqlock publish of one shard snapshot, ns");
    push_hist_ = &registry_.histogram(
        "she_pipeline_push_latency_ns",
        "producer push() wall time, 1-in-64 sampled while telemetry is "
        "enabled, ns");
    checkpoint_hist_ = &registry_.histogram(
        "she_pipeline_checkpoint_latency_ns",
        "frame + atomic-replace of one durable checkpoint, ns");
    stall_ns_ = &registry_.counter(
        "she_pipeline_stall_ns_total",
        "producer time spent spin-yielding on full rings (Block policy), ns");
    stall_events_ = &registry_.counter(
        "she_pipeline_stall_events_total",
        "full-ring stall episodes entered by producers (Block policy)");
    push_timeouts_ = &registry_.counter(
        "she_pipeline_push_timeouts_total",
        "pushes that gave up after push_timeout_ms (BlockTimeout policy)");
    rate_gauge_ = &registry_.gauge(
        "she_pipeline_rate_items_per_sec",
        "drained items/s over the last rate_window_s seconds");
    degraded_gauge_ = &registry_.gauge(
        "she_degraded",
        "1 while the pipeline is read-only after a disk fault");
    disk_faults_ = &registry_.counter(
        "she_pipeline_disk_faults_total",
        "WAL/checkpoint writes that failed with a disk-unhealthy errno");
    if (!opt_.checkpoint_dir.empty())
      std::filesystem::create_directories(opt_.checkpoint_dir);
    std::vector<char> image;
    shards_.reserve(opt_.shards);
    for (std::size_t s = 0; s < opt_.shards; ++s) {
      std::optional<CheckpointData> ck;
      if (opt_.resume)
        ck = read_newest_checkpoint(checkpoint_path(s), opt_.checkpoint_keep);
      auto sh = ck ? std::make_unique<Shard>(deserialize<Estimator>(
                         ck->payload.data(), ck->payload.size()))
                   : std::make_unique<Shard>(factory(s));
      sh->index = s;
      bind_metrics(*sh, s);
      sh->producer_offsets.assign(opt_.producers, 0);
      if (ck) {
        sh->resume_offset = ck->stream_offset;
        sh->consumed = ck->stream_offset;
        sh->consumed_at_publish = ck->stream_offset;
        sh->last_checkpoint = ck->stream_offset;
        // Version-2 frames record each producer lane's contribution to
        // the stream offset; restore it so post-resume frames stay
        // cumulative.  (Version-1 frames and producer-count changes
        // degrade to zeros / truncation.)
        sh->producer_offsets = ck->producer_offsets;
        sh->producer_offsets.resize(opt_.producers, 0);
      }
      if (opt_.wal_mode != WalMode::kOff) {
        // Scan the backlog log, replay the accepted suffix past the
        // checkpoint into the estimator (in logged order — the WAL lane
        // enqueues in log order for any producer count, so logged order
        // is drain order and the result is byte-identical to the
        // unfaulted run), and open the log for appending with the torn
        // tail truncated.  The checkpoint offset identifies an exact log
        // prefix because a batch is only logged once ring space for it
        // is reserved: sheds happen before the append, and a frame past
        // the checkpoint is always un-applied in its entirety beyond
        // `consumed`.
        WalScan scan = read_wal(wal_path(s));
        if (opt_.resume) {
          std::uint64_t pos = sh->consumed;
          for (const WalFrame& f : scan.frames) {
            if (f.end_offset() <= pos) continue;  // already checkpointed
            const std::vector<std::uint64_t> keys = f.keys();
            const std::size_t skip = static_cast<std::size_t>(
                pos > f.start_offset ? pos - f.start_offset : 0);
            const std::span<const std::uint64_t> rest(keys.data() + skip,
                                                      keys.size() - skip);
            if constexpr (requires { sh->est.insert_batch(rest); })
              sh->est.insert_batch(rest);
            else
              for (std::uint64_t k : rest) sh->est.insert(k);
            pos = f.end_offset();
            sh->wal_replayed->inc(rest.size());
            // WAL-mode items all drain through lane 0 (the WAL lane).
            sh->producer_offsets[0] += rest.size();
          }
          pos = std::max(pos, scan.end_offset);
          sh->resume_offset = pos;
          sh->consumed = pos;
          sh->consumed_at_publish = pos;
          // If the checkpoint is ahead of the log (log file lost or
          // fully compacted away), new frames must still start at the
          // checkpoint offset — an append below `consumed` would be
          // skipped as "already checkpointed" at the next resume.
          scan.end_offset = std::max(scan.end_offset, pos);
        }
        if (!opt_.resume) {
          // A fresh (non-resuming) pipeline must not append after stale
          // frames from an earlier life of this directory.
          std::error_code ec;
          std::filesystem::remove(wal_path(s), ec);
        }
        ShardWal::Options wopt;
        wopt.mode = opt_.wal_mode;
        wopt.fsync_interval_bytes = opt_.wal_fsync_bytes;
        wopt.compact_min_bytes = opt_.wal_compact_bytes;
        wopt.hooks.torn = [s](std::uint64_t seq, std::size_t frame_bytes) {
          return fault::maybe_torn_wal(s, seq, frame_bytes, kWalHeaderBytes);
        };
        wopt.hooks.fail_fsync = [s](std::uint64_t seq) {
          return fault::maybe_fail_fsync(s, seq);
        };
        wopt.hooks.fail_errno = [s](std::uint64_t seq) {
          return fault::maybe_disk_errno(s, seq);
        };
        if (opt_.wal_observer) {
          auto cb = opt_.wal_observer;
          wopt.observer = [cb, s](const WalFrame& f,
                                  std::span<const char> encoded) {
            cb(s, f, encoded);
          };
        }
        sh->wal = std::make_unique<ShardWal>(wal_path(s), std::move(wopt),
                                             opt_.resume ? scan : WalScan{});
        // Seed the generation history conservatively: checkpoint files
        // from before this restart may still be retained with offsets we
        // no longer know, so compaction must not pass the resume base
        // until `checkpoint_keep` fresh generations have rotated them out.
        sh->ckpt_history.assign(opt_.checkpoint_keep, sh->last_checkpoint);
      }
      serialize_to(image, sh->est);
      sh->snap = std::make_unique<SeqlockSlot>(2 * image.size() +
                                               opt_.snapshot_slack_bytes);
      sh->snap->publish(image.data(), image.size());
      sh->rings.reserve(opt_.producers);
      for (std::size_t p = 0; p < opt_.producers; ++p)
        sh->rings.push_back(std::make_unique<SpscRing>(opt_.queue_capacity));
      shards_.push_back(std::move(sh));
    }
    produced_.reserve(opt_.producers);
    for (std::size_t p = 0; p < opt_.producers; ++p)
      produced_.push_back(&registry_.counter(
          "she_pipeline_produced_total", "accepted pushes per producer",
          {{"producer", std::to_string(p)}}));
    start_ns_.store(now_ns(), std::memory_order_relaxed);
  }

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  ~IngestPipeline() { close(); }

  [[nodiscard]] const PipelineOptions& options() const { return opt_; }
  [[nodiscard]] std::size_t shard_count() const { return opt_.shards; }

  /// Same routing as Sharded<T> with the same seed.
  [[nodiscard]] std::size_t shard_of(std::uint64_t key) const {
    return static_cast<std::size_t>(hash64(key, opt_.route_seed) % opt_.shards);
  }

  /// Items shard `s`'s estimator already contained when this pipeline was
  /// constructed with `resume` (0 otherwise): a single-producer driver
  /// replaying the original trace should skip the first resume_offset(s)
  /// keys that route to shard s to reproduce the unfaulted run exactly.
  [[nodiscard]] std::uint64_t resume_offset(std::size_t s) const {
    return shards_[s]->resume_offset;
  }

  /// True while any shard worker is dead by exception (or abandoned after
  /// max_restarts) and not yet restarted.  Any thread.
  [[nodiscard]] bool faulted() const {
    for (const auto& sh : shards_) {
      const WorkerState st = sh->state.load(std::memory_order_acquire);
      if (st == WorkerState::kFaulted || st == WorkerState::kAbandoned)
        return true;
    }
    return false;
  }

  /// True while the pipeline is parked read-only after a disk fault
  /// (pushes throw DegradedError; queries and snapshots keep working).
  /// Any thread.
  [[nodiscard]] bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Launch one worker thread per shard (plus the supervisor and the
  /// queue-depth sampler when configured).
  void start() {
    if (started_.load(std::memory_order_relaxed))
      throw std::logic_error("IngestPipeline: already started");
    if (closed_.load(std::memory_order_relaxed))
      throw std::logic_error("IngestPipeline: already closed");
    started_.store(true, std::memory_order_relaxed);
    start_ns_.store(now_ns(), std::memory_order_relaxed);
    workers_.reserve(opt_.shards);
    for (std::size_t s = 0; s < opt_.shards; ++s)
      workers_.emplace_back([this, s] { worker_entry(s); });
    if (opt_.supervise)
      supervisor_ = std::thread([this] { supervisor_loop(); });
    if (opt_.sample_interval_ms > 0)
      sampler_ = std::thread([this] { sampler_loop(); });
  }

  /// Route one key from producer `producer` to its shard's ring.
  /// Returns false iff the item was not accepted: DropNewest and the ring
  /// is full, a BlockTimeout push that timed out, a Block push against a
  /// dead (faulted, unsupervised or abandoned) shard, or the pipeline is
  /// closing.
  bool push(std::size_t producer, std::uint64_t key) {
    check_degraded();
    if (opt_.wal_mode != WalMode::kOff) {
      // Every accepted item must be logged, or the WAL's offsets stop
      // matching the checkpoint's consumed counts.
      return push_bulk(producer, std::span<const std::uint64_t>(&key, 1)) == 1;
    }
    return push_impl(producer, key, 0);
  }

 private:
  struct Shard;  // defined below; referenced by the push helpers' signatures

  /// The enqueue core.  `deadline_ns` (absolute, steady-clock ns; 0 =
  /// none) bounds any blocking spin on top of the configured policy —
  /// the server threads its per-request deadline through here so an
  /// overloaded or wedged shard sheds the push instead of wedging the
  /// handler thread.
  bool push_impl(std::size_t producer, std::uint64_t key,
                 std::int64_t deadline_ns) {
    thread_local std::uint64_t push_seq = 0;
    const bool timed = obs::enabled() && ((++push_seq & 63u) == 0);
    const std::int64_t t0 = timed ? now_ns() : 0;
    Shard& sh = *shards_[shard_of(key)];
    SpscRing& ring = *sh.rings[producer];
    if (!accepting_.load(std::memory_order_acquire)) return false;
    if (!ring.try_push(key)) {
      if (opt_.policy == Backpressure::kDropNewest) {
        sh.dropped->inc();
        return false;
      }
      const std::int64_t stall_start = now_ns();
      stall_events_->inc();  // one episode, however long the spin lasts
      std::int64_t deadline =
          opt_.policy == Backpressure::kBlockTimeout
              ? stall_start +
                    static_cast<std::int64_t>(opt_.push_timeout_ms) * 1'000'000
              : std::numeric_limits<std::int64_t>::max();
      if (deadline_ns != 0) deadline = std::min(deadline, deadline_ns);
      const auto charge_stall = [&] {
        stall_ns_->inc(static_cast<std::uint64_t>(now_ns() - stall_start));
      };
      std::int64_t backoff_us = 0;
      for (;;) {
        if (!accepting_.load(std::memory_order_acquire)) {
          charge_stall();
          return false;
        }
        if (shard_dead(sh)) {
          // Nobody will ever drain this ring: fail instead of spinning
          // forever behind a dead consumer.
          sh.dropped->inc();
          charge_stall();
          return false;
        }
        if (now_ns() >= deadline) {
          push_timeouts_->inc();
          charge_stall();
          return false;
        }
        if (backoff_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          backoff_us = std::min<std::int64_t>(backoff_us * 2, 1000);
        } else {
          std::this_thread::yield();
          // Exponential backoff only under BlockTimeout: plain Block keeps
          // the latency-optimal pure spin-yield.
          if (opt_.policy == Backpressure::kBlockTimeout) backoff_us = 1;
        }
        if (ring.try_push(key)) break;
      }
      charge_stall();
    }
    // Traced request?  Leave the id on the shard so the drain worker can
    // attribute the next sweep to it (one relaxed store; see worker_loop).
    if (obs::trace::enabled()) {
      const std::uint64_t trace_id = obs::trace::current_trace_id();
      if (trace_id != 0)
        sh.last_trace_id.store(trace_id, std::memory_order_relaxed);
    }
    produced_[producer]->inc();
    if (timed)
      push_hist_->observe(static_cast<std::uint64_t>(now_ns() - t0));
    return true;
  }

  /// Wait until `ring` (the shard's WAL lane) has at least `want` free
  /// slots.  Returns true when the space is there — or when the shard
  /// went terminally dead mid-wait, which the caller re-checks and routes
  /// to the durable-only path.  Returns false when the batch must be
  /// shed: pipeline closing, request deadline passed, or BlockTimeout
  /// expiry.  The free-space count is exact from the producer side: the
  /// caller holds the shard's wal_mu (sole producer on this ring) and the
  /// consumer only ever frees slots.
  bool wait_ring_space(Shard& sh, SpscRing& ring, std::size_t want,
                       std::int64_t deadline_ns) {
    const auto free_now = [&ring] {
      return ring.capacity() - ring.size_approx();
    };
    if (free_now() >= want) return true;
    const std::int64_t stall_start = now_ns();
    stall_events_->inc();
    std::int64_t deadline =
        opt_.policy == Backpressure::kBlockTimeout
            ? stall_start +
                  static_cast<std::int64_t>(opt_.push_timeout_ms) * 1'000'000
            : std::numeric_limits<std::int64_t>::max();
    if (deadline_ns != 0) deadline = std::min(deadline, deadline_ns);
    bool ok = true;
    std::int64_t backoff_us = 0;
    for (;;) {
      if (!accepting_.load(std::memory_order_acquire)) {
        ok = false;
        break;
      }
      if (shard_dead(sh)) break;
      if (free_now() >= want) break;
      if (now_ns() >= deadline) {
        push_timeouts_->inc();
        ok = false;
        break;
      }
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        backoff_us = std::min<std::int64_t>(backoff_us * 2, 1000);
      } else {
        std::this_thread::yield();
        if (opt_.policy == Backpressure::kBlockTimeout || deadline_ns != 0)
          backoff_us = 1;
      }
    }
    stall_ns_->inc(static_cast<std::uint64_t>(now_ns() - stall_start));
    return ok;
  }

  /// The WAL lane: commit one per-shard sub-batch atomically — dedup
  /// check, ring-space admission, log append, enqueue — under the shard's
  /// wal_mu.  All WAL-mode enqueues go through ring 0 in log-append order
  /// regardless of `producer`, so drain order equals log order and the
  /// checkpoint's drained-item count identifies the exact log prefix it
  /// covers.  Returns g.size() when the batch is durable (acked) or a
  /// known duplicate, 0 when it was shed with nothing logged and nothing
  /// recorded (a retry is clean); a WalError from the append propagates
  /// with nothing acked.
  std::size_t wal_push(std::size_t producer, Shard& sh,
                       std::span<const std::uint64_t> g,
                       std::uint64_t client_id, std::uint64_t client_seq,
                       std::int64_t deadline_ns) {
    std::lock_guard<std::mutex> lk(sh.wal_mu);
    if (!accepting_.load(std::memory_order_acquire)) return 0;
    if (client_id != 0 &&
        client_seq <= sh.wal->seq_table().high(client_id)) {
      // Duplicate of an already-applied delivery: ack without waiting on
      // ring space — the retry must not block behind a full ring.
      sh.wal_dups->inc(g.size());
      return g.size();
    }
    SpscRing& ring = *sh.rings[0];
    if (!shard_dead(sh)) {
      // Admission before durability: reserve ring space for the whole
      // batch (capped at the ring's capacity for oversize batches) so a
      // request deadline or BlockTimeout expiry sheds it *before*
      // anything reaches the log.  A logged batch is therefore never
      // abandoned mid-log, which is what keeps checkpoint offsets
      // aligned with log positions.
      if (!wait_ring_space(sh, ring, std::min(g.size(), ring.capacity()),
                           deadline_ns))
        return 0;
    }
    bool logged = false;
    try {
      logged = sh.wal->append(g, client_id, client_seq);
    } catch (const DiskFault& e) {
      // The disk under the log is sick (ENOSPC/EIO): park the pipeline
      // read-only and tell the caller with the typed error.  Nothing was
      // acked and nothing reached the ring, so a post-recovery retry is
      // clean and deduplicated.
      enter_degraded(e.what());
      throw DegradedError(e.what());
    }
    if (!logged) {
      sh.wal_dups->inc(g.size());
      return g.size();  // the earlier delivery already covered it
    }
    if (!shard_dead(sh)) {
      // Committed: enqueue the whole batch in log order.  Space for
      // min(size, capacity) items is already reserved; an oversize tail
      // rides the live drain.  Only terminal shard death aborts the
      // loop, and then the logged tail surfaces, in order, at the next
      // resume — a dead shard never drains or checkpoints again, so no
      // later batch can be applied *behind* it.
      std::size_t i = 0;
      while (i < g.size()) {
        if (ring.try_push(g[i])) {
          ++i;
          continue;
        }
        if (shard_dead(sh)) break;
        std::this_thread::yield();
      }
      if (obs::trace::enabled()) {
        const std::uint64_t trace_id = obs::trace::current_trace_id();
        if (trace_id != 0)
          sh.last_trace_id.store(trace_id, std::memory_order_relaxed);
      }
    }
    produced_[producer]->inc(g.size());
    return g.size();
  }

 public:
  /// push() each key in order; returns how many were accepted.
  std::size_t push_bulk(std::size_t producer,
                        std::span<const std::uint64_t> keys) {
    return push_bulk(producer, keys, 0, 0, 0);
  }

  /// push_bulk with a client identity and an optional absolute deadline.
  ///
  /// Keys are grouped per shard (preserving arrival order within each
  /// shard); with the log configured each non-empty sub-batch commits
  /// through the shard's WAL lane (see wal_push): all-or-nothing — either
  /// the whole sub-batch is logged and enqueued in log order (counted
  /// accepted), or it is shed before anything reaches the log (counted
  /// rejected, retry is clean).  A sub-batch whose (client_id,
  /// client_seq) was already applied to that shard — a client replaying
  /// after a lost ack — is skipped and counted as accepted: the earlier
  /// delivery covered it, so the replay is exactly-once per shard.
  /// client_id 0 means "no identity" (no dedup).
  ///
  /// `deadline_ns` (steady-clock absolute, 0 = none) bounds blocking:
  /// past it, remaining sub-batches fail fast instead of wedging the
  /// caller.  Only a terminally dead shard still accepts a sub-batch
  /// into the log without enqueueing it (*durable but not yet live*);
  /// its items surface at the next resume, in order, and are counted
  /// accepted here because they are part of the recoverable stream.
  std::size_t push_bulk(std::size_t producer,
                        std::span<const std::uint64_t> keys,
                        std::uint64_t client_id, std::uint64_t client_seq,
                        std::int64_t deadline_ns = 0) {
    SHE_TRACE_SPAN("pipeline.push_bulk", "pipeline");
    check_degraded();
    if (opt_.wal_mode == WalMode::kOff && client_id == 0) {
      std::size_t accepted = 0;
      for (std::uint64_t k : keys)
        accepted += push_impl(producer, k, deadline_ns) ? 1 : 0;
      return accepted;
    }
    // Group per shard, preserving order.  thread_local scratch: bulk
    // callers are long-lived handler threads.
    thread_local std::vector<std::vector<std::uint64_t>> groups;
    groups.resize(opt_.shards);
    for (auto& g : groups) g.clear();
    for (std::uint64_t k : keys) groups[shard_of(k)].push_back(k);
    std::size_t accepted = 0;
    for (std::size_t s = 0; s < opt_.shards; ++s) {
      const std::vector<std::uint64_t>& g = groups[s];
      if (g.empty()) continue;
      Shard& sh = *shards_[s];
      if (sh.wal != nullptr) {
        accepted += wal_push(producer, sh, g, client_id, client_seq,
                             deadline_ns);
        continue;
      }
      if (!sh.seqs.record(client_id, client_seq)) {
        sh.wal_dups->inc(g.size());
        accepted += g.size();  // the earlier delivery already covered it
        continue;
      }
      for (std::uint64_t k : g)
        accepted += push_impl(producer, k, deadline_ns) ? 1 : 0;
    }
    return accepted;
  }

  /// Stop accepting, drain every ring, publish final snapshots (and final
  /// checkpoints when configured), join workers.  Idempotent.  If start()
  /// was never called the queues are drained inline on the calling thread.
  void close() {
    if (closed_.load(std::memory_order_relaxed)) return;
    accepting_.store(false, std::memory_order_release);
    stopping_.store(true, std::memory_order_release);
    if (started_.load(std::memory_order_relaxed)) {
      if (supervisor_.joinable()) supervisor_.join();
      for (auto& t : workers_)
        if (t.joinable()) t.join();
      workers_.clear();
      if (sampler_.joinable()) sampler_.join();
      // A fence hand-over can race close(): the supervisor fences a wedged
      // worker out, then observes stopping_ and exits before restarting it.
      // Finish the hand-over inline so cleanly-exited shards never strand
      // accepted items in their rings.  (Faulted shards stay as they are —
      // their live estimator is untrustworthy.)
      for (std::size_t s = 0; s < opt_.shards; ++s) {
        Shard& sh = *shards_[s];
        if (sh.state.load(std::memory_order_acquire) == WorkerState::kExited &&
            !rings_empty(sh)) {
          sh.fence.store(false, std::memory_order_relaxed);
          worker_entry(s);
        }
      }
    } else {
      for (std::size_t s = 0; s < opt_.shards; ++s) worker_entry(s);
    }
    closed_.store(true, std::memory_order_relaxed);
    stop_ns_.store(now_ns(), std::memory_order_relaxed);
  }

  /// Drain-then-publish barrier: ask every live shard worker to finish
  /// draining its rings, publish a fresh snapshot, and — with
  /// `with_checkpoint` and a configured checkpoint_dir — write a durable
  /// frame, then wait for the acknowledgements.  This is what a serving
  /// front-end's FLUSH (make earlier accepted inserts visible to
  /// snapshot queries) and SAVE (checkpoint now, not at the next
  /// interval) commands ride on.
  ///
  /// Returns true when every shard acked within `timeout_ms`; false on
  /// timeout or when a shard is dead/abandoned.  Workers ack only from
  /// their idle branch (rings momentarily empty), so under relentless
  /// concurrent ingest the barrier is best-effort and bounded by the
  /// timeout.  Any thread may call this; on a closed (or never-started)
  /// pipeline the final state is already published and checkpointed, so
  /// it returns true immediately.
  bool sync(bool with_checkpoint, std::size_t timeout_ms = 5000) {
    if (closed_.load(std::memory_order_acquire)) return true;
    if (!started_.load(std::memory_order_relaxed)) {
      // No workers yet: the construction-time snapshots are current.
      return true;
    }
    std::vector<std::uint64_t> want(opt_.shards);
    for (std::size_t s = 0; s < opt_.shards; ++s) {
      Shard& sh = *shards_[s];
      if (with_checkpoint && !opt_.checkpoint_dir.empty())
        sh.sync_ckpt.store(true, std::memory_order_relaxed);
      want[s] = sh.sync_req.fetch_add(1, std::memory_order_acq_rel) + 1;
    }
    const std::int64_t deadline =
        now_ns() + static_cast<std::int64_t>(timeout_ms) * 1'000'000;
    bool ok = true;
    for (std::size_t s = 0; s < opt_.shards; ++s) {
      Shard& sh = *shards_[s];
      while (sh.sync_ack.load(std::memory_order_acquire) < want[s]) {
        if (closed_.load(std::memory_order_acquire)) return true;
        if (shard_dead(sh)) {  // nobody will ever ack this shard
          ok = false;
          break;
        }
        if (now_ns() >= deadline) return false;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    return ok;
  }

  /// A private copy of shard `s`'s latest published estimator state.
  /// Callable from any thread at any time.
  [[nodiscard]] Estimator snapshot(std::size_t s) const {
    std::vector<char> buf;
    shards_[s]->snap->read(buf);
    return deserialize<Estimator>(buf.data(), buf.size());
  }

  /// The raw slot, for SnapshotReader-style cached readers.
  [[nodiscard]] const SeqlockSlot& snapshot_slot(std::size_t s) const {
    return *shards_[s]->snap;
  }

  /// The pipeline's private metric registry (always on); export it with
  /// obs::write_prometheus / obs::write_json, typically alongside
  /// obs::default_registry().
  [[nodiscard]] const obs::Registry& metrics_registry() const {
    return registry_;
  }

  /// Plain-struct view over the registry counters (see RuntimeStats).
  [[nodiscard]] RuntimeStats stats() const {
    RuntimeStats st;
    st.shards = opt_.shards;
    st.producers = opt_.producers;
    st.per_shard.reserve(opt_.shards);
    for (const auto& sh : shards_) {
      ShardStats ss;
      ss.inserted = sh->inserted->value();
      ss.dropped = sh->dropped->value();
      ss.drains = sh->drains->value();
      ss.publishes = sh->publishes->value();
      ss.queue_hwm = static_cast<std::uint64_t>(sh->queue_hwm->value());
      ss.restarts = sh->restarts->value();
      ss.faults = sh->faults->value();
      ss.lost = sh->lost->value();
      ss.replayed = sh->replayed->value();
      ss.checkpoints = sh->checkpoints->value();
      st.inserted += ss.inserted;
      st.dropped += ss.dropped;
      st.drains += ss.drains;
      st.publishes += ss.publishes;
      st.queue_hwm = std::max(st.queue_hwm, ss.queue_hwm);
      st.worker_restarts += ss.restarts;
      st.worker_faults += ss.faults;
      st.worker_wedged += sh->wedged->value();
      st.items_lost += ss.lost;
      st.items_replayed += ss.replayed;
      st.checkpoints += ss.checkpoints;
      st.per_shard.push_back(ss);
    }
    for (const obs::Counter* c : produced_) st.produced += c->value();
    st.stall_ns = stall_ns_->value();
    st.stall_events = stall_events_->value();
    st.push_timeouts = push_timeouts_->value();
    const std::int64_t start = start_ns_.load(std::memory_order_relaxed);
    const std::int64_t stop = closed_.load(std::memory_order_relaxed)
                                  ? stop_ns_.load(std::memory_order_relaxed)
                                  : now_ns();
    st.set_rate(static_cast<double>(stop - start) / 1e9);
    st.rate_window_s = opt_.rate_window_s;
    st.recent_items_per_sec = sample_rate(st.inserted);
    return st;
  }

 private:
  enum class WorkerState : int { kIdle, kRunning, kFaulted, kExited,
                                 kAbandoned };

  struct Shard {
    explicit Shard(Estimator e) : est(std::move(e)) {}
    Estimator est;  ///< worker-owned once start() runs
    std::size_t index = 0;
    std::unique_ptr<SeqlockSlot> snap;
    std::vector<std::unique_ptr<SpscRing>> rings;  ///< one per producer
    std::vector<char> scratch;           ///< worker-only: last published image
    std::uint64_t since_publish = 0;     ///< worker-only
    std::uint64_t consumed = 0;          ///< worker-only: items applied
    std::uint64_t consumed_at_publish = 0;  ///< worker-only
    std::uint64_t last_checkpoint = 0;   ///< worker-only: consumed at frame
    std::uint64_t ckpt_ordinal = 0;      ///< worker-only: frames written
    std::uint64_t resume_offset = 0;     ///< fixed at construction
    std::uint64_t hwm_local = 0;         ///< worker-only mirror
    /// Backlog log (wal_mode != kOff).
    std::unique_ptr<ShardWal> wal;
    /// The WAL lane: serializes every WAL-mode sub-batch commit for this
    /// shard (dedup peek, ring-space reservation, append, enqueue on
    /// ring 0) so log-append order equals enqueue order equals drain
    /// order for any number of producers.  See wal_push().
    std::mutex wal_mu;
    /// In-memory idempotence filter when the WAL is off but clients still
    /// send identities (the WAL embeds its own table when on).
    ClientSeqTable seqs;
    /// Worker-only: items each producer lane has contributed to
    /// `consumed` (recorded in version-2 checkpoint frames, restored at
    /// resume).  In WAL mode everything drains through lane 0, so lane 0
    /// carries the whole offset.  After a no-WAL rollback the lanes may
    /// overcount the restored `consumed` — contribution counters, not
    /// exact offsets, on that path.
    std::vector<std::uint64_t> producer_offsets;
    /// Worker-only: offsets of the last `checkpoint_keep` checkpoint
    /// frames, oldest first.  The WAL compaction low-water is the *oldest*
    /// retained generation — resume may fall back past a corrupt newest
    /// frame, and that older base still needs its replay suffix.
    std::vector<std::uint64_t> ckpt_history;
    // Supervision handshake.  The worker's plain fields above are read by
    // the supervisor only after it observed kFaulted/kExited (released by
    // the exiting worker) and joined the thread.
    std::atomic<WorkerState> state{WorkerState::kIdle};
    std::atomic<std::int64_t> heartbeat_ns{0};
    std::atomic<bool> fence{false};  ///< supervisor asks worker to hand over
    // Sync handshake (see sync()): a caller bumps sync_req; the worker
    // acks after its rings drained and a fresh snapshot (and, when
    // sync_ckpt was set, a durable frame) was published.
    std::atomic<std::uint64_t> sync_req{0};
    std::atomic<std::uint64_t> sync_ack{0};
    std::atomic<bool> sync_ckpt{false};
    /// Trace id of the most recent traced push routed here; the worker
    /// adopts (and clears) it at the start of a drain sweep so drain /
    /// publish / checkpoint spans carry the requester's id.
    std::atomic<std::uint64_t> last_trace_id{0};
    std::string fault_msg;           ///< written before state -> kFaulted
    // Registry-owned metrics (see bind_metrics); plain pointers, the
    // registry outlives the shards.
    obs::Counter* inserted = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* drains = nullptr;
    obs::Counter* publishes = nullptr;
    obs::Counter* restarts = nullptr;
    obs::Counter* faults = nullptr;
    obs::Counter* wedged = nullptr;
    obs::Counter* lost = nullptr;
    obs::Counter* replayed = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Counter* wal_replayed = nullptr;
    obs::Counter* wal_dups = nullptr;
    obs::Gauge* queue_hwm = nullptr;
    obs::Gauge* queue_depth = nullptr;
  };

  void bind_metrics(Shard& sh, std::size_t s) {
    const obs::Labels shard_label = {{"shard", std::to_string(s)}};
    sh.inserted = &registry_.counter("she_pipeline_inserted_total",
                                     "items drained into the estimator",
                                     shard_label);
    sh.dropped = &registry_.counter(
        "she_pipeline_dropped_total",
        "pushes rejected (DropNewest full ring, or dead-shard abort)",
        shard_label);
    sh.drains = &registry_.counter("she_pipeline_drains_total",
                                   "non-empty drain sweeps", shard_label);
    sh.publishes = &registry_.counter("she_pipeline_publishes_total",
                                      "snapshot publications", shard_label);
    sh.restarts = &registry_.counter("she_pipeline_worker_restarts_total",
                                     "supervised worker restarts",
                                     shard_label);
    sh.faults = &registry_.counter("she_pipeline_worker_faults_total",
                                   "worker threads died by exception",
                                   shard_label);
    sh.wedged = &registry_.counter(
        "she_pipeline_worker_wedged_total",
        "heartbeat-stale episodes detected by the supervisor", shard_label);
    sh.lost = &registry_.counter(
        "she_pipeline_items_lost_total",
        "items rolled back to the last published snapshot at a restart",
        shard_label);
    sh.replayed = &registry_.counter(
        "she_pipeline_items_replayed_total",
        "ring backlog re-drained by a restarted worker", shard_label);
    sh.checkpoints = &registry_.counter("she_pipeline_checkpoints_total",
                                        "durable checkpoint frames written",
                                        shard_label);
    sh.wal_replayed = &registry_.counter(
        "she_pipeline_wal_replayed_total",
        "items re-inserted from the backlog log at resume", shard_label);
    sh.wal_dups = &registry_.counter(
        "she_pipeline_wal_duplicates_total",
        "keys skipped as already-applied client replays", shard_label);
    sh.queue_hwm = &registry_.gauge("she_pipeline_queue_hwm",
                                    "deepest single ring observed",
                                    shard_label);
    sh.queue_depth = &registry_.gauge(
        "she_pipeline_queue_depth",
        "queued items across the shard's rings (sweep/sampler refreshed)",
        shard_label);
  }

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  [[nodiscard]] std::string checkpoint_path(std::size_t s) const {
    return opt_.checkpoint_dir + "/shard-" + std::to_string(s) + ".ckpt";
  }

  [[nodiscard]] std::string wal_path(std::size_t s) const {
    return opt_.checkpoint_dir + "/shard-" + std::to_string(s) + ".wal";
  }

  /// A shard whose ring will never drain again: dead by exception with no
  /// supervisor to revive it, or abandoned past max_restarts.
  [[nodiscard]] bool shard_dead(const Shard& sh) const {
    const WorkerState st = sh.state.load(std::memory_order_acquire);
    return st == WorkerState::kAbandoned ||
           (st == WorkerState::kFaulted && !opt_.supervise);
  }

  void publish(Shard& sh) {
    SHE_TRACE_SPAN("pipeline.publish", "pipeline");
    const std::int64_t t0 = now_ns();
    serialize_to(sh.scratch, sh.est);
    sh.snap->publish(sh.scratch.data(), sh.scratch.size());
    publish_hist_->observe(static_cast<std::uint64_t>(now_ns() - t0));
    sh.publishes->inc();
    sh.since_publish = 0;
    sh.consumed_at_publish = sh.consumed;
    if (!opt_.checkpoint_dir.empty() &&
        sh.consumed_at_publish - sh.last_checkpoint >= opt_.checkpoint_interval)
      write_checkpoint(sh);
  }

  /// Frame the just-published image (scratch) and atomically replace the
  /// shard's checkpoint file.  Runs on the worker thread; the injection
  /// hook may corrupt the frame on purpose.
  void write_checkpoint(Shard& sh) {
    SHE_TRACE_SPAN("pipeline.checkpoint", "pipeline");
    if (degraded_.load(std::memory_order_acquire))
      return;  // disk is sick: keep the previous generation until recovery
    const std::int64_t t0 = now_ns();
    std::vector<char> frame = frame_checkpoint(
        sh.consumed_at_publish,
        std::span<const std::uint64_t>(sh.producer_offsets.data(),
                                       sh.producer_offsets.size()),
        std::span<const char>(sh.scratch.data(), sh.scratch.size()));
    fault::maybe_corrupt_frame(sh.index, sh.ckpt_ordinal, frame);
    try {
      if (fault::maybe_ckpt_eio(sh.index, sh.ckpt_ordinal))
        throw DiskFault(
            "checkpoint: injected EIO on " + checkpoint_path(sh.index), EIO);
      rotate_checkpoints(checkpoint_path(sh.index), opt_.checkpoint_keep);
      write_file_atomic(checkpoint_path(sh.index),
                        std::span<const char>(frame.data(), frame.size()));
    } catch (const DiskFault& e) {
      // Survivable: the previous generation stays in place and the
      // pipeline parks read-only instead of killing the worker.
      enter_degraded(e.what());
      return;
    }
    ++sh.ckpt_ordinal;
    sh.checkpoints->inc();
    sh.last_checkpoint = sh.consumed_at_publish;
    if (sh.wal != nullptr) {
      // A durable checkpoint retires the WAL frames below the *oldest*
      // generation rotate_checkpoints still keeps: resume may fall back
      // that far past corrupt newer frames, and replays forward from it.
      sh.ckpt_history.push_back(sh.consumed_at_publish);
      while (sh.ckpt_history.size() > opt_.checkpoint_keep)
        sh.ckpt_history.erase(sh.ckpt_history.begin());
      try {
        sh.wal->compact(sh.ckpt_history.front());
      } catch (const WalError&) {
        // Compaction is an optimization; a failed rewrite leaves the old
        // (longer but valid) log in place and retries next checkpoint.
      }
    }
    checkpoint_hist_->observe(static_cast<std::uint64_t>(now_ns() - t0));
  }

  /// Park the pipeline read-only after a survivable disk fault.  Any
  /// thread (push callers and shard workers both land here).
  void enter_degraded(const std::string& why) {
    disk_faults_->inc();
    {
      std::lock_guard<std::mutex> lk(degraded_mu_);
      degraded_msg_ = why;
    }
    // Start the probe clock now so the first recovery attempt waits a
    // full interval — the fault is fresh, the disk almost certainly
    // still sick.
    last_probe_ns_.store(now_ns(), std::memory_order_relaxed);
    degraded_gauge_->set(1);
    degraded_.store(true, std::memory_order_release);
  }

  /// Push-path gate: fail fast with the typed error while degraded,
  /// running at most one disk-recovery probe per degraded_probe_ms.
  void check_degraded() {
    if (!degraded_.load(std::memory_order_acquire)) return;
    if (try_recover()) return;
    std::lock_guard<std::mutex> lk(degraded_mu_);
    throw DegradedError("pipeline degraded (read-only): " + degraded_msg_);
  }

  /// One caller per probe interval actually touches the disk: a tiny
  /// durable write-and-remove in the checkpoint directory — the same
  /// filesystem the WAL and checkpoint writers need.  Returns true when
  /// this call cleared degraded mode.
  bool try_recover() {
    const std::int64_t interval =
        static_cast<std::int64_t>(opt_.degraded_probe_ms) * 1'000'000;
    std::int64_t last = last_probe_ns_.load(std::memory_order_relaxed);
    const std::int64_t now = now_ns();
    if (now - last < interval) return false;
    if (!last_probe_ns_.compare_exchange_strong(last, now,
                                                std::memory_order_relaxed))
      return false;  // another pusher won this probe slot
    try {
      const std::string probe = opt_.checkpoint_dir + "/.probe";
      static constexpr char kProbe[] = {'o', 'k'};
      write_file_atomic(probe, std::span<const char>(kProbe, sizeof kProbe));
      std::error_code ec;
      std::filesystem::remove(probe, ec);
    } catch (const std::exception&) {
      return false;  // still sick; next probe after the interval
    }
    degraded_gauge_->set(0);
    degraded_.store(false, std::memory_order_release);
    return true;
  }

  void worker_entry(std::size_t si) {
    Shard& sh = *shards_[si];
    sh.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
    sh.state.store(WorkerState::kRunning, std::memory_order_release);
    try {
      worker_loop(si);
      sh.state.store(WorkerState::kExited, std::memory_order_release);
    } catch (const std::exception& e) {
      // The estimator may be mid-batch; only the published snapshot is
      // trustworthy now.  The supervisor (when enabled) rolls back to it.
      sh.fault_msg = e.what();
      sh.faults->inc();
      sh.state.store(WorkerState::kFaulted, std::memory_order_release);
    }
  }

  void worker_loop(std::size_t si) {
    Shard& sh = *shards_[si];
    std::vector<std::uint64_t> buf(opt_.drain_batch);
    for (;;) {
      const std::int64_t sweep_start = now_ns();
      sh.heartbeat_ns.store(sweep_start, std::memory_order_relaxed);
      if (sh.fence.load(std::memory_order_acquire)) break;  // hand over
      fault::maybe_stall(si, sh.consumed);
      fault::maybe_throw(si, sh.consumed);
      // Adopt (and clear) the id of the most recent traced push routed to
      // this shard, so this sweep's drain/publish/checkpoint spans carry
      // it across the producer → worker thread hop.
      const bool tracing = obs::trace::enabled();
      obs::trace::TraceIdScope trace_scope(
          tracing ? sh.last_trace_id.exchange(0, std::memory_order_relaxed)
                  : 0);
      const std::uint64_t sweep_ticks =
          tracing ? obs::trace::now_ticks() : 0;
      std::size_t got = 0;
      std::size_t depth_total = 0;
      for (std::size_t p = 0; p < sh.rings.size(); ++p) {
        SpscRing& ring = *sh.rings[p];
        const std::size_t depth = ring.size_approx();
        depth_total += depth;
        if (depth > sh.hwm_local) {
          sh.hwm_local = depth;
          sh.queue_hwm->max_of(static_cast<std::int64_t>(depth));
        }
        std::size_t n;
        while ((n = ring.drain(buf.data(), buf.size())) > 0) {
          const std::span<const std::uint64_t> block(buf.data(), n);
          {
            SHE_TRACE_SPAN("estimator.insert_batch", "estimator");
            if constexpr (requires { sh.est.insert_batch(block); })
              sh.est.insert_batch(block);  // pipelined hash-ahead + prefetch
            else
              for (std::size_t i = 0; i < n; ++i) sh.est.insert(buf[i]);
          }
          got += n;
          sh.producer_offsets[p] += n;
          if (n < buf.size()) break;  // ring (momentarily) empty; next ring
        }
      }
      sh.queue_depth->set(static_cast<std::int64_t>(depth_total));
      if (got > 0) {
        drain_hist_->observe(static_cast<std::uint64_t>(now_ns() - sweep_start));
        if (tracing)
          obs::trace::record("pipeline.drain", "pipeline", sweep_ticks,
                             obs::trace::now_ticks(),
                             obs::trace::current_trace_id());
        sh.inserted->inc(got);
        sh.drains->inc();
        sh.consumed += got;
        sh.since_publish += got;
        if (sh.since_publish >= opt_.publish_interval) publish(sh);
        continue;
      }
      // Idle: surface whatever arrived since the last publish so readers
      // see a fresh snapshot even in quiet periods.
      if (sh.since_publish > 0) publish(sh);
      // sync() barrier: rings are momentarily empty, so publish (filling
      // scratch — the construction-time publish bypassed it) and ack.
      const std::uint64_t syncreq = sh.sync_req.load(std::memory_order_acquire);
      if (syncreq != sh.sync_ack.load(std::memory_order_relaxed)) {
        // The empty-rings observation above predates this acquire load, so
        // it may have missed pushes made just before the sync() call.  The
        // acquire makes those pushes visible; re-check and re-drain before
        // acking, or the barrier publishes a snapshot missing items it
        // promised to cover.
        if (!rings_empty(sh)) continue;
        publish(sh);
        if (sh.sync_ckpt.exchange(false, std::memory_order_acq_rel) &&
            !opt_.checkpoint_dir.empty())
          write_checkpoint(sh);
        sh.sync_ack.store(syncreq, std::memory_order_release);
      }
      if (stopping_.load(std::memory_order_acquire) && rings_empty(sh)) break;
      std::this_thread::yield();
    }
    publish(sh);  // final state, unconditionally
    if (!opt_.checkpoint_dir.empty() &&
        sh.consumed_at_publish != sh.last_checkpoint)
      write_checkpoint(sh);
  }

  /// Supervisor: poll worker states, restart the dead, fence the wedged.
  void supervisor_loop() {
    std::vector<std::uint64_t> restart_count(opt_.shards, 0);
    const std::int64_t heartbeat_timeout_ns =
        static_cast<std::int64_t>(opt_.heartbeat_timeout_ms) * 1'000'000;
    while (!stopping_.load(std::memory_order_acquire)) {
      for (std::size_t s = 0; s < opt_.shards; ++s) {
        Shard& sh = *shards_[s];
        const WorkerState st = sh.state.load(std::memory_order_acquire);
        const bool dead_by_fault = st == WorkerState::kFaulted;
        const bool fenced_out = st == WorkerState::kExited &&
                                sh.fence.load(std::memory_order_acquire);
        if (dead_by_fault || fenced_out) {
          if (restart_count[s] >= opt_.max_restarts) {
            sh.state.store(WorkerState::kAbandoned,
                           std::memory_order_release);
            continue;
          }
          ++restart_count[s];
          restart_shard(s, /*rollback=*/dead_by_fault);
        } else if (st == WorkerState::kRunning &&
                   !sh.fence.load(std::memory_order_acquire)) {
          const std::int64_t hb =
              sh.heartbeat_ns.load(std::memory_order_relaxed);
          if (hb != 0 && now_ns() - hb > heartbeat_timeout_ns) {
            // Wedged: ask the worker to hand its shard over at the next
            // point it is responsive.  We cannot kill a thread; a worker
            // that never wakes is only ever *counted* here.
            sh.wedged->inc();
            sh.fence.store(true, std::memory_order_release);
          }
        }
      }
      // Sleep in small slices so close() is never delayed.
      auto remaining = std::chrono::milliseconds(opt_.supervisor_interval_ms);
      while (remaining.count() > 0 &&
             !stopping_.load(std::memory_order_acquire)) {
        const auto slice = std::min(remaining, std::chrono::milliseconds(2));
        std::this_thread::sleep_for(slice);
        remaining -= slice;
      }
    }
  }

  /// Re-insert log items [consumed_at_publish, consumed) into the
  /// freshly-rolled-back estimator; returns the offset healed up to.
  /// Runs on the supervisor thread after the dead worker was joined, so
  /// it owns sh.est; a concurrent producer may be appending past
  /// `consumed`, but the range we read is already flushed to the file
  /// (it was applied by the worker, so its append long since returned).
  std::uint64_t wal_heal(Shard& sh) {
    std::uint64_t pos = sh.consumed_at_publish;
    if (pos >= sh.consumed) return sh.consumed;
    WalScan scan;
    try {
      scan = read_wal(wal_path(sh.index));
    } catch (const std::exception&) {
      return pos;
    }
    for (const WalFrame& f : scan.frames) {
      if (f.end_offset() <= pos) continue;
      if (f.start_offset > pos) break;  // hole — caller accounts the rest
      const std::vector<std::uint64_t> keys = f.keys();
      const std::size_t lo = static_cast<std::size_t>(pos - f.start_offset);
      const std::size_t hi = static_cast<std::size_t>(std::min<std::uint64_t>(
          keys.size(), sh.consumed - f.start_offset));
      const std::span<const std::uint64_t> part(keys.data() + lo, hi - lo);
      if constexpr (requires { sh.est.insert_batch(part); })
        sh.est.insert_batch(part);
      else
        for (std::uint64_t k : part) sh.est.insert(k);
      sh.wal_replayed->inc(part.size());
      pos = f.start_offset + hi;
      if (pos >= sh.consumed) break;
    }
    return pos;
  }

  /// Join the dead worker, restore the shard (rolling back to the last
  /// published snapshot after a fault — the live estimator may be
  /// mid-batch garbage), account lost/replayed items, relaunch.  With the
  /// WAL on, the rollback gap [consumed_at_publish, consumed) is healed
  /// back from the log (every applied item was logged first), so nothing
  /// is lost and the checkpoint offset keeps identifying a log prefix.
  void restart_shard(std::size_t s, bool rollback) {
    Shard& sh = *shards_[s];
    if (workers_[s].joinable()) workers_[s].join();
    std::uint64_t backlog = 0;
    for (const auto& r : sh.rings) backlog += r->size_approx();
    if (rollback) {
      try {
        std::vector<char> buf;
        sh.snap->read(buf);
        Estimator restored = deserialize<Estimator>(buf.data(), buf.size());
        std::destroy_at(&sh.est);
        std::construct_at(&sh.est, std::move(restored));
      } catch (const std::exception&) {
        // Published snapshots are always valid frames; if restoring one
        // still fails the shard cannot be saved — abandon it.
        sh.state.store(WorkerState::kAbandoned, std::memory_order_release);
        return;
      }
      if (sh.wal != nullptr) {
        const std::uint64_t healed = wal_heal(sh);
        if (healed < sh.consumed) {
          // A hole in the log below `consumed` (should be impossible:
          // items are logged before they are applied).  The unhealable
          // range is gone from the live estimator; account it like the
          // no-WAL path would.
          sh.lost->inc(sh.consumed - healed);
        }
      } else {
        sh.lost->inc(sh.consumed - sh.consumed_at_publish);
        sh.consumed = sh.consumed_at_publish;
      }
    }
    sh.since_publish = 0;
    sh.replayed->inc(backlog);
    sh.restarts->inc();
    sh.fence.store(false, std::memory_order_release);
    sh.state.store(WorkerState::kIdle, std::memory_order_release);
    workers_[s] = std::thread([this, s] { worker_entry(s); });
  }

  /// Periodically refresh the queue-depth gauges (and high-water marks) so
  /// scrapes see backlog even when a worker is wedged inside a long drain,
  /// and feed the windowed-rate view.
  void sampler_loop() {
    const auto interval = std::chrono::milliseconds(opt_.sample_interval_ms);
    while (!stopping_.load(std::memory_order_acquire)) {
      std::uint64_t inserted_total = 0;
      for (const auto& sh : shards_) {
        std::size_t depth_total = 0;
        std::size_t deepest = 0;
        for (const auto& r : sh->rings) {
          const std::size_t d = r->size_approx();
          depth_total += d;
          deepest = std::max(deepest, d);
        }
        sh->queue_depth->set(static_cast<std::int64_t>(depth_total));
        sh->queue_hwm->max_of(static_cast<std::int64_t>(deepest));
        inserted_total += sh->inserted->value();
      }
      sample_rate(inserted_total);
      // Sleep in small slices so close() is never delayed by a long period.
      auto remaining = interval;
      while (remaining.count() > 0 &&
             !stopping_.load(std::memory_order_acquire)) {
        const auto slice = std::min(remaining, std::chrono::milliseconds(5));
        std::this_thread::sleep_for(slice);
        remaining -= slice;
      }
    }
  }

  /// Feed (now, total) into the windowed-rate view and return the current
  /// rate; callable from the sampler thread and stats() concurrently.
  double sample_rate(std::uint64_t inserted_total) const {
    std::lock_guard<std::mutex> lk(rate_mu_);
    rate_window_.sample(now_ns(), inserted_total);
    const double r = rate_window_.rate();
    rate_gauge_->set(static_cast<std::int64_t>(r));
    return r;
  }

  [[nodiscard]] static bool rings_empty(const Shard& sh) {
    for (const auto& r : sh.rings)
      if (r->size_approx() > 0) return false;
    return true;
  }

  PipelineOptions opt_;
  obs::Registry registry_;  ///< declared before anything holding handles
  obs::Histogram* drain_hist_ = nullptr;
  obs::Histogram* publish_hist_ = nullptr;
  obs::Histogram* push_hist_ = nullptr;
  obs::Histogram* checkpoint_hist_ = nullptr;
  obs::Counter* stall_ns_ = nullptr;
  obs::Counter* stall_events_ = nullptr;
  obs::Counter* push_timeouts_ = nullptr;
  obs::Gauge* rate_gauge_ = nullptr;
  obs::Gauge* degraded_gauge_ = nullptr;
  obs::Counter* disk_faults_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<obs::Counter*> produced_;  ///< one per producer
  std::vector<std::thread> workers_;     ///< indexed by shard
  std::thread supervisor_;
  std::thread sampler_;
  mutable std::mutex rate_mu_;
  mutable RateWindow rate_window_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> closed_{false};
  std::atomic<bool> degraded_{false};
  std::atomic<std::int64_t> last_probe_ns_{0};
  std::mutex degraded_mu_;
  std::string degraded_msg_;  ///< guarded by degraded_mu_
  std::atomic<std::int64_t> start_ns_{0};
  std::atomic<std::int64_t> stop_ns_{0};
};

}  // namespace she::runtime
