#include "runtime/ingest_pipeline.hpp"

#include <string>

namespace she::runtime {

const char* to_string(Backpressure p) {
  return p == Backpressure::kBlock ? "block" : "drop";
}

Backpressure backpressure_from(const std::string& name) {
  if (name == "block") return Backpressure::kBlock;
  if (name == "drop" || name == "drop-newest") return Backpressure::kDropNewest;
  throw std::invalid_argument("backpressure policy must be 'block' or 'drop'");
}

void PipelineOptions::validate() const {
  if (shards == 0)
    throw std::invalid_argument("PipelineOptions: shards must be > 0");
  if (producers == 0)
    throw std::invalid_argument("PipelineOptions: producers must be > 0");
  if (queue_capacity == 0)
    throw std::invalid_argument("PipelineOptions: queue_capacity must be > 0");
  if (drain_batch == 0)
    throw std::invalid_argument("PipelineOptions: drain_batch must be > 0");
  if (publish_interval == 0)
    throw std::invalid_argument(
        "PipelineOptions: publish_interval must be > 0");
}

}  // namespace she::runtime
