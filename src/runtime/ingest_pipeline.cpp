#include "runtime/ingest_pipeline.hpp"

#include <string>

namespace she::runtime {

const char* to_string(Backpressure p) {
  switch (p) {
    case Backpressure::kBlock: return "block";
    case Backpressure::kDropNewest: return "drop";
    case Backpressure::kBlockTimeout: return "block-timeout";
  }
  return "?";
}

Backpressure backpressure_from(const std::string& name) {
  if (name == "block") return Backpressure::kBlock;
  if (name == "drop" || name == "drop-newest") return Backpressure::kDropNewest;
  if (name == "block-timeout" || name == "timeout")
    return Backpressure::kBlockTimeout;
  throw std::invalid_argument(
      "backpressure policy must be 'block', 'drop', or 'block-timeout'");
}

void PipelineOptions::validate() const {
  if (shards == 0)
    throw std::invalid_argument("PipelineOptions: shards must be > 0");
  if (producers == 0)
    throw std::invalid_argument("PipelineOptions: producers must be > 0");
  if (queue_capacity == 0)
    throw std::invalid_argument("PipelineOptions: queue_capacity must be > 0");
  if (drain_batch == 0)
    throw std::invalid_argument("PipelineOptions: drain_batch must be > 0");
  if (publish_interval == 0)
    throw std::invalid_argument(
        "PipelineOptions: publish_interval must be > 0");
  if (policy == Backpressure::kBlockTimeout && push_timeout_ms == 0)
    throw std::invalid_argument(
        "PipelineOptions: BlockTimeout needs push_timeout_ms > 0");
  if (resume && checkpoint_dir.empty())
    throw std::invalid_argument(
        "PipelineOptions: resume needs a checkpoint_dir");
  if (!checkpoint_dir.empty() && checkpoint_interval == 0)
    throw std::invalid_argument(
        "PipelineOptions: checkpoint_interval must be > 0");
  if (checkpoint_keep == 0)
    throw std::invalid_argument(
        "PipelineOptions: checkpoint_keep must be >= 1");
  if (supervise && heartbeat_timeout_ms == 0)
    throw std::invalid_argument(
        "PipelineOptions: supervise needs heartbeat_timeout_ms > 0");
  if (supervise && supervisor_interval_ms == 0)
    throw std::invalid_argument(
        "PipelineOptions: supervise needs supervisor_interval_ms > 0");
  if (rate_window_s == 0)
    throw std::invalid_argument("PipelineOptions: rate_window_s must be > 0");
  if (wal_mode != WalMode::kOff && checkpoint_dir.empty())
    throw std::invalid_argument(
        "PipelineOptions: the WAL needs a checkpoint_dir (the log lives "
        "beside the shard checkpoints it backstops)");
  // kDropNewest rejects items one by one *inside* an accepted batch,
  // which the log cannot express — a logged-but-dropped key would be
  // replayed at resume and double counted.  kBlockTimeout is safe with
  // the WAL: ring space for the whole sub-batch is reserved before the
  // append (IngestPipeline::wal_push), so an expiry sheds the batch
  // with nothing logged and nothing acked — never after durability.
  if (wal_mode != WalMode::kOff && policy == Backpressure::kDropNewest)
    throw std::invalid_argument(
        "PipelineOptions: the WAL needs an all-or-nothing backpressure "
        "policy (a logged item must not be droppable; use block or "
        "block-timeout — timeouts shed before the append)");
}

}  // namespace she::runtime
