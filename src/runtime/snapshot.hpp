// Seqlock-versioned estimator snapshots for queries under load.
//
// Estimators are single-writer objects with no internal atomics
// (docs/INTERNALS.md §5), so a query may never touch an estimator a worker
// is inserting into.  Instead each shard worker periodically *publishes* a
// serialized image of its estimator (the same save()/load() byte format
// used for checkpoints) into a SeqlockSlot, and readers reconstruct a
// private copy from the latest consistent image:
//
//   writer:  seq -> odd,  release fence,  copy bytes,  seq -> even
//   reader:  s1 = seq (even?),  copy bytes,  acquire fence,  s2 = seq,
//            retry unless s1 == s2
//
// The payload is stored as relaxed std::atomic<uint64_t> words, which is
// what makes the classic seqlock well-defined under the C++ memory model
// (and clean under ThreadSanitizer): a torn read can only yield stale or
// mixed *values*, which the sequence check discards — never undefined
// behavior.  The slot's capacity is fixed at construction so readers can
// size their copy without coordinating with the writer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <streambuf>
#include <thread>
#include <vector>

#include "common/io.hpp"
#include "runtime/ring_buffer.hpp"

namespace she::runtime {

namespace detail {

/// std::streambuf appending to a caller-owned byte vector.
class VectorSink final : public std::streambuf {
 public:
  explicit VectorSink(std::vector<char>& v) : v_(v) {}

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) v_.push_back(static_cast<char>(ch));
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    v_.insert(v_.end(), s, s + n);
    return n;
  }

 private:
  std::vector<char>& v_;
};

/// std::streambuf reading from a caller-owned byte range.  Seekable so
/// BinaryReader can bound length prefixes against the remaining bytes
/// (a corrupted prefix must fail fast, not allocate gigabytes).
class MemSource final : public std::streambuf {
 public:
  MemSource(const char* data, std::size_t n) {
    char* p = const_cast<char*>(data);
    setg(p, p, p + n);
  }

 protected:
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override {
    if (!(which & std::ios_base::in)) return pos_type(off_type(-1));
    const off_type size = egptr() - eback();
    off_type target = off;
    if (dir == std::ios_base::cur) target += gptr() - eback();
    else if (dir == std::ios_base::end) target += size;
    if (target < 0 || target > size) return pos_type(off_type(-1));
    setg(eback(), eback() + target, egptr());
    return pos_type(target);
  }

  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override {
    return seekoff(off_type(pos), std::ios_base::beg, which);
  }
};

}  // namespace detail

/// Serialize `obj` (anything with save(BinaryWriter&)) into `out`,
/// reusing its capacity.
template <typename T>
void serialize_to(std::vector<char>& out, const T& obj) {
  out.clear();
  detail::VectorSink sink(out);
  std::ostream os(&sink);
  BinaryWriter w(os);
  obj.save(w);
}

/// Reconstruct a T (anything with static load(BinaryReader&)) from bytes.
template <typename T>
[[nodiscard]] T deserialize(const char* data, std::size_t n) {
  detail::MemSource src(data, n);
  std::istream is(&src);
  BinaryReader r(is);
  return T::load(r);
}

/// Single-writer seqlock over a fixed-capacity byte payload.
class SeqlockSlot {
 public:
  /// Capacity is fixed for the slot's lifetime (rounded up to whole
  /// 64-bit words); publish() throws std::length_error beyond it.
  explicit SeqlockSlot(std::size_t capacity_bytes)
      : words_((capacity_bytes + 7) / 8) {
    if (words_.empty()) words_ = std::vector<std::atomic<std::uint64_t>>(1);
  }

  [[nodiscard]] std::size_t capacity_bytes() const { return words_.size() * 8; }

  /// Publish a new payload.  Single writer only.
  void publish(const void* data, std::size_t bytes) {
    if (bytes > capacity_bytes())
      throw std::length_error("SeqlockSlot: payload exceeds fixed capacity");
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);  // odd: write in progress
    std::atomic_thread_fence(std::memory_order_release);
    bytes_.store(bytes, std::memory_order_relaxed);
    const char* src = static_cast<const char*>(data);
    const std::size_t nwords = (bytes + 7) / 8;
    for (std::size_t i = 0; i < nwords; ++i) {
      std::uint64_t w = 0;
      const std::size_t nb = bytes - i * 8 < 8 ? bytes - i * 8 : 8;
      std::memcpy(&w, src + i * 8, nb);
      words_[i].store(w, std::memory_order_relaxed);
    }
    seq_.store(s + 2, std::memory_order_release);  // even: consistent
  }

  /// One read attempt; on success fills `out` and `version` (even) and
  /// returns true.  False means the read raced a publish — retry.
  bool try_read(std::vector<char>& out, std::uint64_t& version) const {
    const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
    if (s1 & 1) return false;
    const std::size_t bytes = bytes_.load(std::memory_order_relaxed);
    if (bytes > capacity_bytes()) return false;  // torn size field
    out.resize(bytes);
    const std::size_t nwords = (bytes + 7) / 8;
    for (std::size_t i = 0; i < nwords; ++i) {
      const std::uint64_t w = words_[i].load(std::memory_order_relaxed);
      const std::size_t nb = bytes - i * 8 < 8 ? bytes - i * 8 : 8;
      std::memcpy(out.data() + i * 8, &w, nb);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) != s1) return false;
    version = s1;
    return true;
  }

  /// Read, retrying until a consistent payload is obtained; returns its
  /// version.  Writers publish in bounded time, so this terminates.
  std::uint64_t read(std::vector<char>& out) const {
    std::uint64_t version = 0;
    for (std::size_t spins = 0; !try_read(out, version); ++spins)
      if (spins >= 16) std::this_thread::yield();
    return version;
  }

  /// Latest sequence value (odd while a publish is in flight).
  [[nodiscard]] std::uint64_t version() const {
    return seq_.load(std::memory_order_acquire);
  }

 private:
  alignas(kCacheLine) std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::size_t> bytes_{0};
  std::vector<std::atomic<std::uint64_t>> words_;
};

/// Caching reader: deserializes a slot's payload into a T and only
/// re-reads when the published version moves.  One instance per reader
/// thread (not itself thread-safe).
template <typename T>
class SnapshotReader {
 public:
  explicit SnapshotReader(const SeqlockSlot& slot) : slot_(&slot) {}

  /// The latest consistent snapshot (refreshed on version change).
  const T& get() {
    if (!obj_ || slot_->version() != version_) refresh();
    return *obj_;
  }

  /// Version of the currently cached snapshot.
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  void refresh() {
    version_ = slot_->read(buf_);
    obj_.emplace(deserialize<T>(buf_.data(), buf_.size()));
  }

  const SeqlockSlot* slot_;
  std::uint64_t version_ = 0;
  std::vector<char> buf_;
  std::optional<T> obj_;
};

}  // namespace she::runtime
