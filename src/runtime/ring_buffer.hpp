// SpscRing — bounded lock-free single-producer/single-consumer queue.
//
// The ingest runtime gives every (producer, shard) pair its own ring, so
// each ring has exactly one writer and one reader and needs no CAS loops:
// the producer publishes a slot with a release store of `tail_`, the
// consumer acquires it, and both sides keep a cached copy of the opposite
// index so the common case touches only one shared cache line.  Indices are
// free-running 64-bit counters (never wrapped), which makes full/empty
// tests simple subtractions and sidesteps the classic "one slot wasted"
// scheme.  Head and tail live on separate cache lines to avoid false
// sharing between the two threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace she::runtime {

/// Alignment that keeps producer- and consumer-owned state on distinct
/// cache lines (std::hardware_destructive_interference_size is still
/// patchy across toolchains; 64 covers x86 and common ARM parts).
inline constexpr std::size_t kCacheLine = 64;

class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 1).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Producer side.  Returns false when the ring is full.
  bool try_push(std::uint64_t v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = v;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns false when the ring is empty.
  bool try_pop(std::uint64_t& v) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    v = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pop up to `max` items into `out`, preserving order.
  std::size_t drain(std::uint64_t* out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t avail = cached_tail_ - head;
    if (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t n = avail < max ? static_cast<std::size_t>(avail) : max;
    for (std::size_t i = 0; i < n; ++i) out[i] = slots_[(head + i) & mask_];
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Approximate depth; exact when called by the consumer.
  [[nodiscard]] std::size_t size_approx() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

 private:
  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};   // next pop
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};   // next push
  alignas(kCacheLine) std::uint64_t cached_head_ = 0;        // producer-owned
  alignas(kCacheLine) std::uint64_t cached_tail_ = 0;        // consumer-owned
};

}  // namespace she::runtime
