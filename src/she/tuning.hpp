// Parameter tuning from the paper's analysis (Sec. 5).
//
//  * Eq. (2): the optimal cleaning-speed ratio alpha for SHE-BF minimizes
//    FPR(R) = [1 - (Q^R - Q) / (ln(Q) R)]^H with R = alpha + 1 and
//    Q = (1 - 1/w)^(C*H/G) the per-cycle zero-bit retention factor.
//    The optimum is the root R0 of dg/dR = Q^R (R ln Q - 1) + Q = 0
//    (monotonically increasing), giving alpha = R0 - 1.
//
//  * Eq. (1): on-demand cleaning fails for a group that receives no
//    insertion in a full cycle; the expected number of failed groups is
//    E(G) = G * (1 - 1/G)^((1+alpha) C H) ≈ G e^(-(1+alpha) C H / G).
//    max_groups_for_failure() returns the largest G keeping E(G) <= eps.
#pragma once

#include <cstddef>
#include <cstdint>

namespace she {

/// Zero-bit retention factor Q for a SHE-BF with `cells` bits in groups of
/// `group_cells`, window cardinality `cardinality` and `hashes` probes:
/// Q = (1 - 1/w)^(C*H/G).
double bf_retention_q(std::size_t cells, std::size_t group_cells,
                      double cardinality, unsigned hashes);

/// Root R0 of Q^R (R ln Q - 1) + Q = 0 (Eq. 2's derivative).  Q in (0,1).
double optimal_ratio(double q);

/// Optimal alpha = R0 - 1 for SHE-BF (Eq. 2).  Clamped below at a small
/// positive value since Tcycle must exceed N.
double optimal_alpha_bf(std::size_t cells, std::size_t group_cells,
                        double cardinality, unsigned hashes);

/// The paper's closed-form FPR model, used by tests to cross-check the
/// alpha optimum: FPR(R) = [1 - (Q^R - Q)/(ln(Q) R)]^H.
double bf_fpr_model(double q, double ratio, unsigned hashes);

/// Expected number of groups that receive no insertion within one cleaning
/// cycle (on-demand cleaning failures), Eq. (1)'s left side.
double expected_failed_groups(std::size_t groups, double cardinality,
                              unsigned hashes, double alpha);

/// Largest group count G with expected_failed_groups(G) <= eps; at least 1.
std::size_t max_groups_for_failure(double cardinality, unsigned hashes,
                                   double alpha, double eps);

}  // namespace she
