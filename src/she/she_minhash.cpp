#include "she/she_minhash.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/she_metrics.hpp"
#include "she/batch_simd.hpp"

namespace she {

SheMinHash::SheMinHash(const SheConfig& cfg)
    : cfg_(cfg),
      clock_(cfg.groups(), cfg.tcycle(), cfg.mark_bits),
      sig_(cfg.cells, kEmpty) {
  cfg_.validate();
  if (cfg.group_cells != 1)
    throw std::invalid_argument("SheMinHash: group_cells must be 1 (w = 1)");
}

void SheMinHash::insert(std::uint64_t key) { insert_at(key, time_ + 1); }

void SheMinHash::advance_to(std::uint64_t t) {
  if (t < time_)
    throw std::invalid_argument("SheMinHash: time must not move backwards");
  time_ = t;
}

void SheMinHash::insert_at(std::uint64_t key, std::uint64_t t) {
  advance_to(t);
  if (obs::enabled()) obs::she_metrics().hash_calls.inc(sig_.size());
  for (std::size_t i = 0; i < sig_.size(); ++i) {
    if (clock_.touch(i, time_)) sig_[i] = kEmpty;
    sig_[i] = std::min(sig_[i], value(key, i));
  }
}

void SheMinHash::insert_batch(std::span<const std::uint64_t> keys) {
  insert_many(keys, nullptr);
}

void SheMinHash::insert_at_batch(std::span<const std::uint64_t> keys,
                                 std::span<const std::uint64_t> times) {
  batch::validate_insert_times(keys, times, time_, "SheMinHash");
  insert_many(keys, times.data());
}

void SheMinHash::insert_many(std::span<const std::uint64_t> keys,
                             const std::uint64_t* times) {
  if (batch::simd_eligible(cfg_.cells)) {
    insert_many_simd(keys, times);
    return;
  }
  // Scalar reference path (also the SHE_FORCE_SCALAR path).
  const auto k = static_cast<unsigned>(sig_.size());
  std::size_t idx = 0;
  batch::pipelined(
      keys, k, scratch_,
      [this](std::uint64_t key, unsigned i) {
        return batch::Slot{i, value(key, i)};
      },
      [](const batch::Slot&) {},  // sequential signature scan: already warm
      [this, times, &idx] {
        if (times != nullptr)
          time_ = times[idx++];
        else
          ++time_;
        if (obs::enabled()) obs::she_metrics().hash_calls.inc(sig_.size());
      },
      [this](std::uint64_t, unsigned, const batch::Slot& s) {
        if (clock_.touch(s.pos, time_)) sig_[s.pos] = kEmpty;
        sig_[s.pos] = std::min(sig_[s.pos],
                               static_cast<std::uint32_t>(s.aux));
      });
}

void SheMinHash::insert_many_simd(std::span<const std::uint64_t> keys,
                                  const std::uint64_t* times) {
  const auto k = static_cast<unsigned>(sig_.size());
  const std::size_t m = sig_.size();
  const batch::MarkStager stager(clock_, time_, times);
  // Every slot of a key shares that key's time, so marks are staged with one
  // range sweep per key (slots ARE the groups: w = 1).  Buffers live outside
  // the block lambda; m can exceed kMaxBlock so they cannot sit on the
  // per-block stack arrays the other estimators use.
  std::vector<std::uint32_t> vals(m);
  std::vector<std::uint32_t> curs(m);
  std::size_t idx = 0;
  batch::pipelined_blocks(
      keys, k, scratch_,
      // Stage 1: lane-parallel hashing across the seed axis (one key, m
      // consecutive seeds), marks staged per key.  aux = cur << 32 | value.
      [&](std::size_t begin, std::size_t n, batch::Slot* out) {
        for (std::size_t b = 0; b < n; ++b) {
          simd::bobhash32_seeds(keys[begin + b], cfg_.seed, m, vals.data());
          const GroupClock::TimeParts p =
              clock_.split(stager.time_of(begin + b));
          clock_.stage_marks_range(0, m, p, curs.data());
          batch::Slot* slot = out + b * m;
          for (std::size_t i = 0; i < m; ++i) {
            slot[i].pos = i;
            slot[i].aux =
                (std::uint64_t{curs[i]} << 32) | (vals[i] & 0xFFFFFFu);
          }
        }
      },
      [this, times, &idx] {
        if (times != nullptr)
          time_ = times[idx++];
        else
          ++time_;
        if (obs::enabled()) obs::she_metrics().hash_calls.inc(sig_.size());
      },
      // Stage 2: scalar CheckGroup + min, against the staged mark.
      [this](std::uint64_t, unsigned, const batch::Slot& s) {
        if (clock_.touch_precomputed(s.pos, s.aux >> 32)) sig_[s.pos] = kEmpty;
        sig_[s.pos] = std::min(sig_[s.pos],
                               static_cast<std::uint32_t>(s.aux & 0xFFFFFFFFu));
      });
}

bool SheMinHash::legal_age(std::uint64_t age) const {
  auto lower = static_cast<std::uint64_t>(cfg_.beta * static_cast<double>(cfg_.window));
  return age >= lower;
}

double SheMinHash::jaccard(const SheMinHash& a, const SheMinHash& b) {
  if (a.sig_.size() != b.sig_.size() || a.cfg_.seed != b.cfg_.seed)
    throw std::invalid_argument("SheMinHash::jaccard: incompatible signatures");
  if (a.time_ != b.time_)
    throw std::invalid_argument("SheMinHash::jaccard: signatures not in lock-step");
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  std::size_t match = 0;
  std::size_t compared = 0;
  // Ages and current marks are staged in chunks through the vectorized
  // GroupClock kernels.  Both are identical on both sides (same cfg, same
  // time, deterministic per-group offsets), so one staging sweep serves
  // both signatures; only the *stored* marks differ per side.
  const GroupClock::TimeParts now = a.clock_.split(a.time_);
  constexpr std::size_t kChunk = 256;
  std::uint64_t age[kChunk];
  std::uint32_t cur[kChunk];
  const std::size_t m = a.sig_.size();
  for (std::size_t i0 = 0; i0 < m; i0 += kChunk) {
    const std::size_t n = std::min(kChunk, m - i0);
    a.clock_.stage_marks_range(i0, n, now, cur, age);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t i = i0 + j;
      if (track) cls.add(age[j], a.cfg_.window);
      if (!a.legal_age(age[j])) continue;
      const std::uint32_t va =
          a.clock_.stored_mark(i) != cur[j] ? kEmpty : a.sig_[i];
      const std::uint32_t vb =
          b.clock_.stored_mark(i) != cur[j] ? kEmpty : b.sig_[i];
      if (va == kEmpty && vb == kEmpty) continue;  // neither window seen here
      ++compared;
      if (va == vb) ++match;
    }
  }
  cls.commit(track);
  return compared == 0 ? 0.0
                       : static_cast<double>(match) / static_cast<double>(compared);
}

double SheMinHash::jaccard(const SheMinHash& a, const SheMinHash& b,
                           std::uint64_t window) {
  if (window == 0 || window > a.cfg_.window)
    throw std::invalid_argument("SheMinHash::jaccard: query window must be in [1, N]");
  if (a.sig_.size() != b.sig_.size() || a.cfg_.seed != b.cfg_.seed)
    throw std::invalid_argument("SheMinHash::jaccard: incompatible signatures");
  if (a.time_ != b.time_)
    throw std::invalid_argument("SheMinHash::jaccard: signatures not in lock-step");
  auto lower = static_cast<std::uint64_t>(a.cfg_.beta * static_cast<double>(window));
  auto upper =
      static_cast<std::uint64_t>((2.0 - a.cfg_.beta) * static_cast<double>(window));
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  std::size_t match = 0;
  std::size_t compared = 0;
  const GroupClock::TimeParts now = a.clock_.split(a.time_);
  constexpr std::size_t kChunk = 256;
  std::uint64_t age[kChunk];
  std::uint32_t cur[kChunk];
  const std::size_t m = a.sig_.size();
  for (std::size_t i0 = 0; i0 < m; i0 += kChunk) {
    const std::size_t n = std::min(kChunk, m - i0);
    a.clock_.stage_marks_range(i0, n, now, cur, age);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t i = i0 + j;
      if (track) cls.add(age[j], window);
      if (age[j] < lower || age[j] >= upper) continue;
      const std::uint32_t va =
          a.clock_.stored_mark(i) != cur[j] ? kEmpty : a.sig_[i];
      const std::uint32_t vb =
          b.clock_.stored_mark(i) != cur[j] ? kEmpty : b.sig_[i];
      if (va == kEmpty && vb == kEmpty) continue;
      ++compared;
      if (va == vb) ++match;
    }
  }
  cls.commit(track);
  return compared == 0 ? 0.0
                       : static_cast<double>(match) / static_cast<double>(compared);
}

std::vector<double> SheMinHash::jaccard_batch(
    const SheMinHash& a, const SheMinHash& b,
    std::span<const std::uint64_t> windows) {
  for (std::uint64_t w : windows)
    if (w == 0 || w > a.cfg_.window)
      throw std::invalid_argument("SheMinHash::jaccard: query window must be in [1, N]");
  if (a.sig_.size() != b.sig_.size() || a.cfg_.seed != b.cfg_.seed)
    throw std::invalid_argument("SheMinHash::jaccard: incompatible signatures");
  if (a.time_ != b.time_)
    throw std::invalid_argument("SheMinHash::jaccard: signatures not in lock-step");
  const std::size_t nw = windows.size();
  std::vector<std::uint64_t> lower(nw), upper(nw);
  for (std::size_t j = 0; j < nw; ++j) {
    lower[j] =
        static_cast<std::uint64_t>(a.cfg_.beta * static_cast<double>(windows[j]));
    upper[j] = static_cast<std::uint64_t>((2.0 - a.cfg_.beta) *
                                          static_cast<double>(windows[j]));
  }
  const bool track = obs::enabled();
  std::vector<obs::AgeClassCounts> cls(track ? nw : 0);
  std::vector<std::size_t> match(nw, 0), compared(nw, 0);
  // One scan of both signatures for every queried window, ages and
  // current marks staged per chunk through the vectorized clock kernels.
  const GroupClock::TimeParts now = a.clock_.split(a.time_);
  constexpr std::size_t kChunk = 256;
  std::uint64_t age[kChunk];
  std::uint32_t cur[kChunk];
  const std::size_t m = a.sig_.size();
  for (std::size_t i0 = 0; i0 < m; i0 += kChunk) {
    const std::size_t n = std::min(kChunk, m - i0);
    a.clock_.stage_marks_range(i0, n, now, cur, age);
    for (std::size_t jj = 0; jj < n; ++jj) {
      const std::size_t i = i0 + jj;
      std::uint32_t va = 0, vb = 0;
      bool slots_known = false;
      for (std::size_t j = 0; j < nw; ++j) {
        if (track) cls[j].add(age[jj], windows[j]);
        if (age[jj] < lower[j] || age[jj] >= upper[j]) continue;
        if (!slots_known) {
          va = a.clock_.stored_mark(i) != cur[jj] ? kEmpty : a.sig_[i];
          vb = b.clock_.stored_mark(i) != cur[jj] ? kEmpty : b.sig_[i];
          slots_known = true;
        }
        if (va == kEmpty && vb == kEmpty) continue;
        ++compared[j];
        if (va == vb) ++match[j];
      }
    }
  }
  std::vector<double> result(nw, 0.0);
  for (std::size_t j = 0; j < nw; ++j) {
    if (track) cls[j].commit(true);
    result[j] = compared[j] == 0 ? 0.0
                                 : static_cast<double>(match[j]) /
                                       static_cast<double>(compared[j]);
  }
  return result;
}

void SheMinHash::save(BinaryWriter& out) const {
  out.tag("SHMH");
  cfg_.save(out);
  out.u64(time_);
  clock_.save(out);
  out.u32_vector(sig_);
}

SheMinHash SheMinHash::load(BinaryReader& in) {
  in.expect_tag("SHMH");
  SheConfig cfg = SheConfig::load(in);
  SheMinHash mh(cfg);
  mh.time_ = in.u64();
  mh.clock_ = GroupClock::load(in);
  mh.sig_ = in.u32_vector();
  if (mh.clock_.groups() != cfg.groups() || mh.sig_.size() != cfg.cells)
    throw std::runtime_error("SheMinHash::load: shape mismatch");
  return mh;
}

void SheMinHash::clear() {
  std::fill(sig_.begin(), sig_.end(), kEmpty);
  clock_.reset();
  time_ = 0;
}

}  // namespace she
