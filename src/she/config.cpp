#include "she/config.hpp"

#include <cmath>
#include <stdexcept>

#include "common/int_math.hpp"

namespace she {

std::uint64_t SheConfig::tcycle() const {
  return static_cast<std::uint64_t>(
      std::llround((1.0 + alpha) * static_cast<double>(window)));
}

std::size_t SheConfig::groups() const {
  return static_cast<std::size_t>(ceil_div(cells, group_cells));
}

void SheConfig::save(BinaryWriter& out) const {
  out.tag("SCFG");
  out.u64(window);
  out.u64(cells);
  out.u64(group_cells);
  out.f64(alpha);
  out.f64(beta);
  out.u32(seed);
  out.u32(mark_bits);
}

SheConfig SheConfig::load(BinaryReader& in) {
  in.expect_tag("SCFG");
  SheConfig cfg;
  cfg.window = in.u64();
  cfg.cells = in.u64();
  cfg.group_cells = in.u64();
  cfg.alpha = in.f64();
  cfg.beta = in.f64();
  cfg.seed = in.u32();
  cfg.mark_bits = in.u32();
  cfg.validate();
  return cfg;
}

void SheConfig::validate() const {
  if (window == 0) throw std::invalid_argument("SheConfig: window must be > 0");
  if (cells == 0) throw std::invalid_argument("SheConfig: cells must be > 0");
  if (group_cells == 0 || group_cells > cells)
    throw std::invalid_argument("SheConfig: group_cells must be in [1, cells]");
  if (!(alpha > 0.0))
    throw std::invalid_argument("SheConfig: alpha must be > 0 (Tcycle > N)");
  if (!(beta > 0.0) || beta > 1.0)
    throw std::invalid_argument("SheConfig: beta must be in (0, 1]");
  if (mark_bits == 0 || mark_bits > 32)
    throw std::invalid_argument("SheConfig: mark_bits must be in [1, 32]");
  if (tcycle() <= window)
    throw std::invalid_argument("SheConfig: Tcycle must exceed the window");
}

}  // namespace she
