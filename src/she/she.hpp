// Umbrella header for the SHE library's public API.
//
//   #include "she/she.hpp"
//
// pulls in the framework core (SheConfig, GroupClock, tuning helpers), the
// five sliding-window estimators (SHE-BF/BM/HLL/CM/MH), the software-sweep
// variant, and the fixed-window base sketches.
#pragma once

#include "she/config.hpp"
#include "she/group_clock.hpp"
#include "she/she_bitmap.hpp"
#include "she/she_bloom.hpp"
#include "she/she_cm.hpp"
#include "she/she_hll.hpp"
#include "she/she_minhash.hpp"
#include "she/heavy_hitters.hpp"
#include "she/monitor.hpp"
#include "she/sharded.hpp"
#include "she/soft_bloom.hpp"
#include "she/tuning.hpp"

#include "sketch/bitmap.hpp"
#include "sketch/bloom_filter.hpp"
#include "sketch/count_min.hpp"
#include "sketch/hyperloglog.hpp"
#include "sketch/minhash.hpp"
