// SHE-MH — MinHash under the SHE framework (paper Sec. 4.5).
//
// One SheMinHash holds the signature of one stream: M 24-bit min-value
// counters, each its own group (w = 1).  Insert CheckGroups every slot and
// keeps the minimum of H_i(x).  jaccard(a, b) compares two signatures built
// with the *same* configuration and hash seed over lock-step streams:
// slots whose age is legal on both sides are compared, and the similarity
// is (#equal legal slots) / (#legal slots).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bobhash.hpp"
#include "she/batch.hpp"
#include "she/config.hpp"
#include "she/group_clock.hpp"

namespace she {

class SheMinHash {
 public:
  /// `cfg.cells` signature slots; `cfg.group_cells` must be 1 (w = 1).
  explicit SheMinHash(const SheConfig& cfg);

  /// Insert one item; advances the stream clock by one.  Every slot is
  /// updated (MinHash's K = m in the CSM).
  void insert(std::uint64_t key);

  /// Insert a batch (bit-for-bit equivalent to insert() per key, in
  /// order).  With K = m the signature is scanned sequentially anyway, so
  /// the win here is staged hashing and uniform metric accounting rather
  /// than prefetch; the generic layer sizes its blocks down automatically.
  void insert_batch(std::span<const std::uint64_t> keys);

  /// Time-based windows: insert at explicit timestamp `t` (monotone
  /// non-decreasing; throws std::invalid_argument if it moves backwards).
  /// With insert_at, `window` counts time units instead of items.
  void insert_at(std::uint64_t key, std::uint64_t t);

  /// Batched insert_at: key[i] inserted at times[i] (monotone
  /// non-decreasing, validated up front; throws like insert_at).  Runs the
  /// same batch/SIMD pipeline as insert_batch.
  void insert_at_batch(std::span<const std::uint64_t> keys,
                       std::span<const std::uint64_t> times);

  /// Advance the clock to `t` without inserting, so queries reflect the
  /// window (t - N, t] even during arrival gaps.
  void advance_to(std::uint64_t t);

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] const SheConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t slot_count() const { return sig_.size(); }

  /// Signature bytes (24-bit slots) + time marks.
  [[nodiscard]] std::size_t memory_bytes() const {
    return sig_.size() * 3 + clock_.memory_bytes();
  }

  /// Checkpoint the full sliding-window state; load() resumes with
  /// identical answers.
  void save(BinaryWriter& out) const;
  static SheMinHash load(BinaryReader& in);

  /// Empty-slot sentinel, larger than any 24-bit hash value.
  static constexpr std::uint32_t kEmpty = 1u << 24;

  /// Estimated Jaccard similarity of the two streams' last-N windows.
  /// Both signatures must share cfg (cells, window, alpha, seed) and be at
  /// the same stream time (lock-step insertion).
  static double jaccard(const SheMinHash& a, const SheMinHash& b);

  /// Multi-window query: similarity over the last `window` items for any
  /// window in [1, N], comparing slots whose age is in the symmetric band
  /// [beta*window, (2-beta)*window).
  static double jaccard(const SheMinHash& a, const SheMinHash& b,
                        std::uint64_t window);

  /// Batched multi-window query: element-wise identical to
  /// jaccard(a, b, windows[i]) but both signatures are scanned ONCE for
  /// all windows instead of once per window.
  static std::vector<double> jaccard_batch(const SheMinHash& a,
                                           const SheMinHash& b,
                                           std::span<const std::uint64_t> windows);

 private:
  [[nodiscard]] std::uint32_t value(std::uint64_t key, std::size_t i) const {
    return BobHash32(cfg_.seed + static_cast<std::uint32_t>(i))(key) & 0xFFFFFFu;
  }
  [[nodiscard]] bool legal_age(std::uint64_t age) const;
  [[nodiscard]] std::uint32_t effective_slot(std::size_t i) const {
    return clock_.stale(i, time_) ? kEmpty : sig_[i];
  }

  SheConfig cfg_;
  GroupClock clock_;
  std::vector<std::uint32_t> sig_;
  std::uint64_t time_ = 0;
  // Shared batch-insert core: times == nullptr means +1 per key.  Picks the
  // SIMD or scalar-reference stage 1; stage 2 is identical either way.
  void insert_many(std::span<const std::uint64_t> keys,
                   const std::uint64_t* times);
  void insert_many_simd(std::span<const std::uint64_t> keys,
                        const std::uint64_t* times);

  std::vector<batch::Slot> scratch_;  // insert_batch staging (not state)
};

}  // namespace she
