#include "she/she_hll.hpp"

#include <cmath>
#include <stdexcept>

#include "common/int_math.hpp"
#include "obs/she_metrics.hpp"
#include "she/batch_simd.hpp"
#include "sketch/hyperloglog.hpp"

namespace she {

namespace {
constexpr unsigned kRankBits = 5;
constexpr unsigned kValueBits = 32;
}  // namespace

SheHyperLogLog::SheHyperLogLog(const SheConfig& cfg)
    : cfg_(cfg),
      clock_(cfg.groups(), cfg.tcycle(), cfg.mark_bits),
      regs_(cfg.cells, kRankBits) {
  cfg_.validate();
  if (cfg.group_cells != 1)
    throw std::invalid_argument("SheHyperLogLog: group_cells must be 1 (w = 1)");
}

void SheHyperLogLog::insert(std::uint64_t key) { insert_at(key, time_ + 1); }

void SheHyperLogLog::advance_to(std::uint64_t t) {
  if (t < time_)
    throw std::invalid_argument("SheHyperLogLog: time must not move backwards");
  time_ = t;
}

void SheHyperLogLog::insert_at(std::uint64_t key, std::uint64_t t) {
  advance_to(t);
  if (obs::enabled()) obs::she_metrics().hash_calls.inc(2);
  std::size_t i = BobHash32(cfg_.seed)(key) % cfg_.cells;
  std::uint32_t h = BobHash32(cfg_.seed + 0x5eed)(key);
  std::uint64_t rank = hll_rank(h, kValueBits);
  if (rank > regs_.max_value()) rank = regs_.max_value();
  if (clock_.touch(i, time_)) regs_.set(i, 0);
  if (rank > regs_.get(i)) regs_.set(i, rank);
}

void SheHyperLogLog::insert_batch(std::span<const std::uint64_t> keys) {
  insert_many(keys, nullptr);
}

void SheHyperLogLog::insert_at_batch(std::span<const std::uint64_t> keys,
                                     std::span<const std::uint64_t> times) {
  batch::validate_insert_times(keys, times, time_, "SheHyperLogLog");
  insert_many(keys, times.data());
}

void SheHyperLogLog::insert_many(std::span<const std::uint64_t> keys,
                                 const std::uint64_t* times) {
  if (batch::simd_eligible(cfg_.cells)) {
    insert_many_simd(keys, times);
    return;
  }
  // Scalar reference path (also the SHE_FORCE_SCALAR path).
  // Cache-resident arrays are not worth prefetching (batch.hpp).
  const bool warm_regs = regs_.memory_bytes() >= batch::kPrefetchFootprint;
  const bool warm_marks = clock_.memory_bytes() >= batch::kPrefetchFootprint;
  std::size_t idx = 0;
  batch::pipelined(
      keys, 1, scratch_,
      [this](std::uint64_t key, unsigned) {
        std::size_t i = BobHash32(cfg_.seed)(key) % cfg_.cells;
        std::uint64_t rank = hll_rank(BobHash32(cfg_.seed + 0x5eed)(key),
                                      kValueBits);
        if (rank > regs_.max_value()) rank = regs_.max_value();
        return batch::Slot{i, rank};
      },
      [this, warm_regs, warm_marks](const batch::Slot& s) {
        if (warm_regs) regs_.prefetch(s.pos, true);
        if (warm_marks) clock_.prefetch(s.pos, true);  // w = 1: reg == group
      },
      [this, times, &idx] {
        if (times != nullptr)
          time_ = times[idx++];
        else
          ++time_;
        if (obs::enabled()) obs::she_metrics().hash_calls.inc(2);
      },
      [this](std::uint64_t, unsigned, const batch::Slot& s) {
        if (clock_.touch(s.pos, time_)) regs_.set(s.pos, 0);
        if (s.aux > regs_.get(s.pos)) regs_.set(s.pos, s.aux);
      });
}

void SheHyperLogLog::insert_many_simd(std::span<const std::uint64_t> keys,
                                      const std::uint64_t* times) {
  const bool warm_regs = regs_.memory_bytes() >= batch::kPrefetchFootprint;
  const bool warm_marks = clock_.memory_bytes() >= batch::kPrefetchFootprint;
  const FastDiv32 mod_cells(static_cast<std::uint32_t>(cfg_.cells));
  const batch::MarkStager stager(clock_, time_, times);
  const std::uint64_t max_rank = regs_.max_value();
  std::size_t idx = 0;
  batch::pipelined_blocks(
      keys, 1, scratch_,
      // Stage 1: two SIMD hash sweeps (register index + rank source), ranks
      // clamped, marks precomputed.  w = 1, so group id == register index;
      // aux = cur << 8 | rank (rank <= 33 fits a byte).
      [&](std::size_t begin, std::size_t n, batch::Slot* out) {
        std::uint32_t hidx[batch::kMaxBlock];
        std::uint32_t hrank[batch::kMaxBlock];
        std::uint32_t pos[batch::kMaxBlock];
        std::uint32_t gid[batch::kMaxBlock];
        std::uint32_t cur[batch::kMaxBlock];
        simd::bobhash32_keys(keys.data() + begin, n, cfg_.seed, hidx);
        simd::bobhash32_keys(keys.data() + begin, n, cfg_.seed + 0x5eed, hrank);
        // w = 1: the unit div_group makes the kernel copy pos into gid.
        simd::positions_groups(hidx, n, mod_cells, FastDiv32(1), pos, gid);
        stager.stage(begin, n, gid, cur);
        for (std::size_t b = 0; b < n; ++b) {
          std::uint64_t rank = hll_rank(hrank[b], kValueBits);
          if (rank > max_rank) rank = max_rank;
          out[b].pos = pos[b];
          out[b].aux = (std::uint64_t{cur[b]} << 8) | rank;
          if (warm_regs) regs_.prefetch(pos[b], true);
          if (warm_marks) clock_.prefetch(pos[b], true);
        }
      },
      [this, times, &idx] {
        if (times != nullptr)
          time_ = times[idx++];
        else
          ++time_;
        if (obs::enabled()) obs::she_metrics().hash_calls.inc(2);
      },
      // Stage 2: scalar CheckGroup + max-merge, against the staged mark.
      [this](std::uint64_t, unsigned, const batch::Slot& s) {
        if (clock_.touch_precomputed(s.pos, s.aux >> 8)) regs_.set(s.pos, 0);
        const std::uint64_t rank = s.aux & 0xFFu;
        if (rank > regs_.get(s.pos)) regs_.set(s.pos, rank);
      });
}

bool SheHyperLogLog::legal_age(std::uint64_t age) const {
  auto lower = static_cast<std::uint64_t>(cfg_.beta * static_cast<double>(cfg_.window));
  return age >= lower;
}

std::size_t SheHyperLogLog::legal_groups() const {
  std::size_t legal = 0;
  for (std::size_t g = 0; g < clock_.groups(); ++g)
    if (legal_age(clock_.age(g, time_))) ++legal;
  return legal;
}

double SheHyperLogLog::cardinality() const {
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  double sum = 0.0;
  std::size_t observed = 0;
  std::size_t zeros = 0;
  // Ages and staleness marks are staged in chunks through the vectorized
  // GroupClock kernels (same values as the per-register age()/stale()
  // calls, one division per scan instead of two per register).
  const GroupClock::TimeParts now = clock_.split(time_);
  constexpr std::size_t kChunk = 256;
  std::uint64_t age[kChunk];
  std::uint32_t cur[kChunk];
  const std::size_t regs = regs_.size();
  for (std::size_t i0 = 0; i0 < regs; i0 += kChunk) {
    const std::size_t n = std::min(kChunk, regs - i0);
    clock_.stage_marks_range(i0, n, now, cur, age);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t i = i0 + j;
      if (track) cls.add(age[j], cfg_.window);
      if (!legal_age(age[j])) continue;
      ++observed;
      std::uint64_t r = clock_.stored_mark(i) != cur[j] ? 0 : regs_.get(i);
      if (r == 0) ++zeros;
      sum += std::ldexp(1.0, -static_cast<int>(r));
    }
  }
  cls.commit(track);
  return fixed::HyperLogLog::estimate(sum, observed,
                                      static_cast<double>(regs_.size()), zeros);
}

double SheHyperLogLog::cardinality(std::uint64_t window) const {
  if (window == 0 || window > cfg_.window)
    throw std::invalid_argument("SheHyperLogLog: query window must be in [1, N]");
  auto lower = static_cast<std::uint64_t>(cfg_.beta * static_cast<double>(window));
  auto upper =
      static_cast<std::uint64_t>((2.0 - cfg_.beta) * static_cast<double>(window));
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  double sum = 0.0;
  std::size_t observed = 0;
  std::size_t zeros = 0;
  const GroupClock::TimeParts now = clock_.split(time_);
  constexpr std::size_t kChunk = 256;
  std::uint64_t age[kChunk];
  std::uint32_t cur[kChunk];
  const std::size_t regs = regs_.size();
  for (std::size_t i0 = 0; i0 < regs; i0 += kChunk) {
    const std::size_t n = std::min(kChunk, regs - i0);
    clock_.stage_marks_range(i0, n, now, cur, age);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t i = i0 + j;
      if (track) cls.add(age[j], window);
      if (age[j] < lower || age[j] >= upper) continue;
      ++observed;
      std::uint64_t r = clock_.stored_mark(i) != cur[j] ? 0 : regs_.get(i);
      if (r == 0) ++zeros;
      sum += std::ldexp(1.0, -static_cast<int>(r));
    }
  }
  cls.commit(track);
  if (observed == 0) return 0.0;
  return fixed::HyperLogLog::estimate(sum, observed,
                                      static_cast<double>(regs_.size()), zeros);
}

std::vector<double> SheHyperLogLog::cardinality_batch(
    std::span<const std::uint64_t> windows) const {
  for (std::uint64_t w : windows)
    if (w == 0 || w > cfg_.window)
      throw std::invalid_argument("SheHyperLogLog: query window must be in [1, N]");
  const std::size_t nw = windows.size();
  std::vector<std::uint64_t> lower(nw), upper(nw);
  for (std::size_t j = 0; j < nw; ++j) {
    lower[j] = static_cast<std::uint64_t>(cfg_.beta * static_cast<double>(windows[j]));
    upper[j] = static_cast<std::uint64_t>((2.0 - cfg_.beta) *
                                          static_cast<double>(windows[j]));
  }
  const bool track = obs::enabled();
  std::vector<obs::AgeClassCounts> cls(track ? nw : 0);
  std::vector<double> sum(nw, 0.0);
  std::vector<std::size_t> observed(nw, 0), zeros(nw, 0);
  // One scan: each register's age and value are read once and reused by
  // every window whose legal band contains the age.
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    std::uint64_t age = clock_.age(i, time_);
    std::uint64_t r = 0;
    bool r_known = false;
    for (std::size_t j = 0; j < nw; ++j) {
      if (track) cls[j].add(age, windows[j]);
      if (age < lower[j] || age >= upper[j]) continue;
      if (!r_known) {
        r = clock_.stale(i, time_) ? 0 : regs_.get(i);
        r_known = true;
      }
      ++observed[j];
      if (r == 0) ++zeros[j];
      sum[j] += std::ldexp(1.0, -static_cast<int>(r));
    }
  }
  std::vector<double> result(nw, 0.0);
  for (std::size_t j = 0; j < nw; ++j) {
    if (track) cls[j].commit(true);
    if (observed[j] == 0) continue;  // matches the scalar 0.0 answer
    result[j] = fixed::HyperLogLog::estimate(
        sum[j], observed[j], static_cast<double>(regs_.size()), zeros[j]);
  }
  return result;
}

void SheHyperLogLog::save(BinaryWriter& out) const {
  out.tag("SHLL");
  cfg_.save(out);
  out.u64(time_);
  clock_.save(out);
  regs_.save(out);
}

SheHyperLogLog SheHyperLogLog::load(BinaryReader& in) {
  in.expect_tag("SHLL");
  SheConfig cfg = SheConfig::load(in);
  SheHyperLogLog hll(cfg);
  hll.time_ = in.u64();
  hll.clock_ = GroupClock::load(in);
  hll.regs_ = PackedArray::load(in);
  if (hll.clock_.groups() != cfg.groups() || hll.regs_.size() != cfg.cells)
    throw std::runtime_error("SheHyperLogLog::load: shape mismatch");
  return hll;
}

void SheHyperLogLog::clear() {
  regs_.clear();
  clock_.reset();
  time_ = 0;
}

}  // namespace she
