#include "she/she_hll.hpp"

#include <cmath>
#include <stdexcept>

#include "common/int_math.hpp"
#include "obs/she_metrics.hpp"
#include "sketch/hyperloglog.hpp"

namespace she {

namespace {
constexpr unsigned kRankBits = 5;
constexpr unsigned kValueBits = 32;
}  // namespace

SheHyperLogLog::SheHyperLogLog(const SheConfig& cfg)
    : cfg_(cfg),
      clock_(cfg.groups(), cfg.tcycle(), cfg.mark_bits),
      regs_(cfg.cells, kRankBits) {
  cfg_.validate();
  if (cfg.group_cells != 1)
    throw std::invalid_argument("SheHyperLogLog: group_cells must be 1 (w = 1)");
}

void SheHyperLogLog::insert(std::uint64_t key) { insert_at(key, time_ + 1); }

void SheHyperLogLog::advance_to(std::uint64_t t) {
  if (t < time_)
    throw std::invalid_argument("SheHyperLogLog: time must not move backwards");
  time_ = t;
}

void SheHyperLogLog::insert_at(std::uint64_t key, std::uint64_t t) {
  advance_to(t);
  if (obs::enabled()) obs::she_metrics().hash_calls.inc(2);
  std::size_t i = BobHash32(cfg_.seed)(key) % cfg_.cells;
  std::uint32_t h = BobHash32(cfg_.seed + 0x5eed)(key);
  std::uint64_t rank = hll_rank(h, kValueBits);
  if (rank > regs_.max_value()) rank = regs_.max_value();
  if (clock_.touch(i, time_)) regs_.set(i, 0);
  if (rank > regs_.get(i)) regs_.set(i, rank);
}

bool SheHyperLogLog::legal_age(std::uint64_t age) const {
  auto lower = static_cast<std::uint64_t>(cfg_.beta * static_cast<double>(cfg_.window));
  return age >= lower;
}

std::size_t SheHyperLogLog::legal_groups() const {
  std::size_t legal = 0;
  for (std::size_t g = 0; g < clock_.groups(); ++g)
    if (legal_age(clock_.age(g, time_))) ++legal;
  return legal;
}

double SheHyperLogLog::cardinality() const {
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  double sum = 0.0;
  std::size_t observed = 0;
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    std::uint64_t age = clock_.age(i, time_);
    if (track) cls.add(age, cfg_.window);
    if (!legal_age(age)) continue;
    ++observed;
    std::uint64_t r = clock_.stale(i, time_) ? 0 : regs_.get(i);
    if (r == 0) ++zeros;
    sum += std::ldexp(1.0, -static_cast<int>(r));
  }
  cls.commit(track);
  return fixed::HyperLogLog::estimate(sum, observed,
                                      static_cast<double>(regs_.size()), zeros);
}

double SheHyperLogLog::cardinality(std::uint64_t window) const {
  if (window == 0 || window > cfg_.window)
    throw std::invalid_argument("SheHyperLogLog: query window must be in [1, N]");
  auto lower = static_cast<std::uint64_t>(cfg_.beta * static_cast<double>(window));
  auto upper =
      static_cast<std::uint64_t>((2.0 - cfg_.beta) * static_cast<double>(window));
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  double sum = 0.0;
  std::size_t observed = 0;
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    std::uint64_t age = clock_.age(i, time_);
    if (track) cls.add(age, window);
    if (age < lower || age >= upper) continue;
    ++observed;
    std::uint64_t r = clock_.stale(i, time_) ? 0 : regs_.get(i);
    if (r == 0) ++zeros;
    sum += std::ldexp(1.0, -static_cast<int>(r));
  }
  cls.commit(track);
  if (observed == 0) return 0.0;
  return fixed::HyperLogLog::estimate(sum, observed,
                                      static_cast<double>(regs_.size()), zeros);
}

void SheHyperLogLog::save(BinaryWriter& out) const {
  out.tag("SHLL");
  cfg_.save(out);
  out.u64(time_);
  clock_.save(out);
  regs_.save(out);
}

SheHyperLogLog SheHyperLogLog::load(BinaryReader& in) {
  in.expect_tag("SHLL");
  SheConfig cfg = SheConfig::load(in);
  SheHyperLogLog hll(cfg);
  hll.time_ = in.u64();
  hll.clock_ = GroupClock::load(in);
  hll.regs_ = PackedArray::load(in);
  if (hll.clock_.groups() != cfg.groups() || hll.regs_.size() != cfg.cells)
    throw std::runtime_error("SheHyperLogLog::load: shape mismatch");
  return hll;
}

void SheHyperLogLog::clear() {
  regs_.clear();
  clock_.reset();
  time_ = 0;
}

}  // namespace she
