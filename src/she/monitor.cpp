#include "she/monitor.hpp"

#include <algorithm>
#include <stdexcept>

namespace she {

namespace {

// Budget split when every task is enabled: membership gets half (Bloom
// filters are the hungriest), frequency a third, cardinality the rest.
struct Split {
  std::size_t membership = 0;
  std::size_t cardinality = 0;
  std::size_t frequency = 0;
  std::size_t similarity = 0;
};

Split split_budget(const MonitorConfig& cfg) {
  double shares = 0;
  if (cfg.track_membership) shares += 3;
  if (cfg.track_frequency) shares += 2;
  if (cfg.track_cardinality) shares += 1;
  if (cfg.track_similarity) shares += 1;
  if (shares == 0) return {};
  double unit = static_cast<double>(cfg.memory_bytes) / shares;
  Split s;
  if (cfg.track_membership) s.membership = static_cast<std::size_t>(3 * unit);
  if (cfg.track_frequency) s.frequency = static_cast<std::size_t>(2 * unit);
  if (cfg.track_cardinality) s.cardinality = static_cast<std::size_t>(unit);
  if (cfg.track_similarity) s.similarity = static_cast<std::size_t>(unit);
  return s;
}

}  // namespace

void MonitorConfig::validate() const {
  if (window == 0) throw std::invalid_argument("MonitorConfig: window must be > 0");
  if (memory_bytes < 1024)
    throw std::invalid_argument("MonitorConfig: budget must be >= 1 KB");
  if (!track_membership && !track_cardinality && !track_frequency &&
      !track_similarity)
    throw std::invalid_argument("MonitorConfig: enable at least one task");
  if (heavy_hitter_slots == 0)
    throw std::invalid_argument("MonitorConfig: heavy_hitter_slots must be > 0");
}

StreamMonitor::StreamMonitor(const MonitorConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  Split split = split_budget(cfg_);
  double cardinality_hint = cfg_.expected_cardinality > 0
                                ? cfg_.expected_cardinality
                                : static_cast<double>(cfg_.window) / 4;

  if (cfg_.track_membership) {
    SheConfig c;
    c.window = cfg_.window;
    c.cells = std::max<std::size_t>(1024, split.membership * 8);
    c.group_cells = 64;
    c.seed = cfg_.seed;
    c.alpha = optimal_alpha_bf(c.cells, c.group_cells, cardinality_hint, 8);
    membership_.emplace(c, 8);
  }
  if (cfg_.track_cardinality) {
    SheConfig c;
    c.window = cfg_.window;
    c.seed = cfg_.seed + 1;
    c.alpha = 0.2;
    if (cfg_.use_hll) {
      // Cap registers below the expected per-window cardinality so every
      // register keeps receiving items (Eq. 1: starved registers alias) —
      // accuracy saturates around a few thousand registers anyway.
      auto cap = static_cast<std::size_t>(cardinality_hint / 2);
      c.cells = std::clamp<std::size_t>(split.cardinality * 8 / 6, 64,
                                        std::max<std::size_t>(64, cap));
      c.group_cells = 1;
      card_hll_.emplace(c);
    } else {
      // Linear counting gains nothing beyond ~32 bits per distinct key;
      // capping also keeps the group refresh rate healthy.
      auto cap = static_cast<std::size_t>(32 * cardinality_hint);
      c.cells = std::clamp<std::size_t>(split.cardinality * 8, 1024,
                                        std::max<std::size_t>(1024, cap));
      c.group_cells = 64;
      // Eq. (1): bound expected starved groups per cycle to 0.5.
      std::size_t max_groups =
          max_groups_for_failure(cardinality_hint, 1, c.alpha, 0.5);
      if (c.groups() > max_groups)
        c.group_cells = (c.cells + max_groups - 1) / max_groups;
      card_bm_.emplace(c);
    }
  }
  if (cfg_.track_frequency) {
    SheConfig c;
    c.window = cfg_.window;
    c.cells = std::max<std::size_t>(1024, split.frequency / 4);  // 32-bit cells
    c.group_cells = 64;
    c.seed = cfg_.seed + 2;
    c.alpha = 1.0;
    freq_.emplace(c, 8, cfg_.heavy_hitter_slots);
  }
  if (cfg_.track_similarity) {
    SheConfig c;
    c.window = cfg_.window;
    // ~4 bytes per slot (24-bit signature + time marks); jaccard()'s
    // variance flattens out after a few hundred slots.
    c.cells = cfg_.similarity_slots > 0
                  ? cfg_.similarity_slots
                  : std::clamp<std::size_t>(split.similarity / 4, 64, 4096);
    c.group_cells = 1;  // SHE-MH: every slot is its own group
    c.seed = cfg_.seed + 3;
    c.alpha = 0.2;
    sim_.emplace(c);
  }
}

void StreamMonitor::insert(std::uint64_t key) {
  ++time_;
  if (membership_) membership_->insert(key);
  if (card_bm_) card_bm_->insert(key);
  if (card_hll_) card_hll_->insert(key);
  if (freq_) freq_->insert(key);
  if (sim_) sim_->insert(key);
}

void StreamMonitor::insert_batch(std::span<const std::uint64_t> keys) {
  // Component sketches are independent, so feeding each the whole batch
  // yields exactly the per-key interleaving's final state.
  time_ += keys.size();
  if (membership_) membership_->insert_batch(keys);
  if (card_bm_) card_bm_->insert_batch(keys);
  if (card_hll_) card_hll_->insert_batch(keys);
  if (freq_)
    for (std::uint64_t key : keys) freq_->insert(key);
  if (sim_) sim_->insert_batch(keys);
}

bool StreamMonitor::seen(std::uint64_t key) const {
  if (!membership_)
    throw std::logic_error("StreamMonitor: membership tracking disabled");
  return membership_->contains(key);
}

std::uint64_t StreamMonitor::frequency(std::uint64_t key) const {
  if (!freq_) throw std::logic_error("StreamMonitor: frequency tracking disabled");
  return freq_->frequency(key);
}

MonitorReport StreamMonitor::report(std::size_t top_k) const {
  MonitorReport rep;
  rep.items = time_;
  if (card_bm_) rep.cardinality = card_bm_->cardinality();
  if (card_hll_) rep.cardinality = card_hll_->cardinality();
  if (freq_) rep.top = freq_->top(top_k);
  return rep;
}

void StreamMonitor::clear() {
  time_ = 0;
  if (membership_) membership_->clear();
  if (card_bm_) card_bm_->clear();
  if (card_hll_) card_hll_->clear();
  if (freq_) freq_->clear();
  if (sim_) sim_->clear();
}

double StreamMonitor::jaccard(const StreamMonitor& a, const StreamMonitor& b) {
  if (!a.sim_ || !b.sim_)
    throw std::invalid_argument(
        "StreamMonitor::jaccard: similarity tracking disabled");
  return SheMinHash::jaccard(*a.sim_, *b.sim_);
}

namespace {

// Per-shard slice of the global monitor config: window, budget and the
// cardinality hint divide by the shard count (Sharded<T>'s window
// semantics); heavy-hitter slots stay full so per-shard top-k lists merge
// without starving any shard.
MonitorConfig shard_monitor_config(const MonitorConfig& global,
                                   std::size_t shards, std::size_t idx) {
  MonitorConfig c = global;
  c.window = std::max<std::uint64_t>(1, global.window / shards);
  c.memory_bytes = std::max<std::size_t>(1024, global.memory_bytes / shards);
  if (global.expected_cardinality > 0)
    c.expected_cardinality =
        global.expected_cardinality / static_cast<double>(shards);
  c.seed = global.seed + static_cast<std::uint32_t>(idx) * 0x9e3779b9u;
  return c;
}

}  // namespace

ConcurrentMonitor::ConcurrentMonitor(const MonitorConfig& monitor,
                                     const runtime::PipelineOptions& pipeline)
    : pipe_(pipeline, [&](std::size_t s) {
        return StreamMonitor(
            shard_monitor_config(monitor, pipeline.shards, s));
      }) {}

bool ConcurrentMonitor::seen(std::uint64_t key) const {
  return pipe_.snapshot(pipe_.shard_of(key)).seen(key);
}

std::uint64_t ConcurrentMonitor::frequency(std::uint64_t key) const {
  return pipe_.snapshot(pipe_.shard_of(key)).frequency(key);
}

MonitorReport MonitorReport::combine(std::span<const MonitorReport> parts,
                                     std::size_t top_k) {
  MonitorReport rep;
  double cardinality = 0;
  bool have_cardinality = false;
  for (const MonitorReport& local : parts) {
    rep.items += local.items;
    if (local.cardinality) {
      cardinality += *local.cardinality;
      have_cardinality = true;
    }
    rep.top.insert(rep.top.end(), local.top.begin(), local.top.end());
  }
  if (have_cardinality) rep.cardinality = cardinality;
  std::sort(rep.top.begin(), rep.top.end(),
            [](const HeavyHitters::Entry& a, const HeavyHitters::Entry& b) {
              return a.estimate != b.estimate ? a.estimate > b.estimate
                                              : a.key < b.key;
            });
  if (rep.top.size() > top_k) rep.top.resize(top_k);
  return rep;
}

MonitorReport ConcurrentMonitor::report(std::size_t top_k) const {
  std::vector<MonitorReport> parts;
  parts.reserve(pipe_.shard_count());
  for (std::size_t s = 0; s < pipe_.shard_count(); ++s)
    parts.push_back(pipe_.snapshot(s).report(top_k));
  return MonitorReport::combine(parts, top_k);
}

double ConcurrentMonitor::jaccard(const ConcurrentMonitor& a,
                                  const ConcurrentMonitor& b) {
  if (a.shard_count() != b.shard_count())
    throw std::invalid_argument(
        "ConcurrentMonitor::jaccard: shard counts differ");
  double sum = 0;
  for (std::size_t s = 0; s < a.shard_count(); ++s) {
    StreamMonitor sa = a.shard_snapshot(s);
    StreamMonitor sb = b.shard_snapshot(s);
    sum += StreamMonitor::jaccard(sa, sb);
  }
  return sum / static_cast<double>(a.shard_count());
}

std::size_t StreamMonitor::memory_bytes() const {
  std::size_t total = 0;
  if (membership_) total += membership_->memory_bytes();
  if (card_bm_) total += card_bm_->memory_bytes();
  if (card_hll_) total += card_hll_->memory_bytes();
  if (freq_) total += freq_->memory_bytes();
  if (sim_) total += sim_->memory_bytes();
  return total;
}

void StreamMonitor::save(BinaryWriter& out) const {
  // "SMN2" appends the similarity fields to the original "SMON" layout;
  // load() still accepts legacy frames (no similarity sketch).
  out.tag("SMN2");
  out.u64(cfg_.window);
  out.u64(cfg_.memory_bytes);
  out.u8(cfg_.track_membership);
  out.u8(cfg_.track_cardinality);
  out.u8(cfg_.track_frequency);
  out.u8(cfg_.use_hll);
  out.f64(cfg_.expected_cardinality);
  out.u64(cfg_.heavy_hitter_slots);
  out.u32(cfg_.seed);
  out.u8(cfg_.track_similarity);
  out.u64(cfg_.similarity_slots);
  out.u64(time_);
  // Sub-sketches in a fixed order; HeavyHitters persists its sketch plus
  // the candidate table so top() answers survive a restore (load-bearing
  // for ConcurrentMonitor, whose queries only ever see checkpoints).
  if (membership_) membership_->save(out);
  if (card_bm_) card_bm_->save(out);
  if (card_hll_) card_hll_->save(out);
  if (freq_) {
    freq_->sketch().save(out);
    auto cands = freq_->candidates();
    out.u64(cands.size());
    for (const auto& e : cands) {
      out.u64(e.key);
      out.u64(e.estimate);
    }
  }
  if (sim_) sim_->save(out);
}

StreamMonitor StreamMonitor::load(BinaryReader& in) {
  const std::string tag = in.read_tag();
  if (tag != "SMN2" && tag != "SMON")
    throw SerializeError("StreamMonitor: expected tag 'SMN2' (or legacy "
                         "'SMON'), stream holds something else");
  MonitorConfig cfg;
  cfg.window = in.u64();
  cfg.memory_bytes = in.u64();
  cfg.track_membership = in.u8() != 0;
  cfg.track_cardinality = in.u8() != 0;
  cfg.track_frequency = in.u8() != 0;
  cfg.use_hll = in.u8() != 0;
  cfg.expected_cardinality = in.f64();
  cfg.heavy_hitter_slots = in.u64();
  cfg.seed = in.u32();
  if (tag == "SMN2") {
    cfg.track_similarity = in.u8() != 0;
    cfg.similarity_slots = in.u64();
  }
  StreamMonitor mon(cfg);
  mon.time_ = in.u64();
  if (mon.membership_) mon.membership_ = SheBloomFilter::load(in);
  if (mon.card_bm_) mon.card_bm_ = SheBitmap::load(in);
  if (mon.card_hll_) mon.card_hll_ = SheHyperLogLog::load(in);
  if (mon.freq_) {
    mon.freq_->restore_sketch(SheCountMin::load(in));
    std::vector<HeavyHitters::Entry> cands(in.u64());
    for (auto& e : cands) {
      e.key = in.u64();
      e.estimate = in.u64();
    }
    mon.freq_->restore_candidates(cands);
  }
  if (mon.sim_) mon.sim_ = SheMinHash::load(in);
  return mon;
}

}  // namespace she
