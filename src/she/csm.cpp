#include "she/csm.hpp"

#include <cmath>
#include <stdexcept>

#include "sketch/bitmap.hpp"
#include "sketch/hyperloglog.hpp"

namespace she::csm {

template <CsmPolicy P>
  requires std::same_as<P, BitmapPolicy>
double cardinality(const SlidingEstimator<P>& est) {
  std::size_t zeros = 0;
  std::size_t observed = 0;
  for (std::size_t pos = 0; pos < est.cell_count(); ++pos) {
    if (!est.legal(pos)) continue;
    ++observed;
    if (est.view(pos).value == 0) ++zeros;
  }
  return fixed::linear_counting(zeros, observed,
                                static_cast<double>(est.cell_count()));
}

template double cardinality<BitmapPolicy>(const SlidingEstimator<BitmapPolicy>&);

template <CsmPolicy P>
  requires std::same_as<P, HllPolicy>
double cardinality(const SlidingEstimator<P>& est) {
  double sum = 0.0;
  std::size_t observed = 0;
  std::size_t zeros = 0;
  for (std::size_t pos = 0; pos < est.cell_count(); ++pos) {
    if (!est.legal(pos)) continue;
    ++observed;
    auto r = est.view(pos).value;
    if (r == 0) ++zeros;
    sum += std::ldexp(1.0, -static_cast<int>(r));
  }
  return fixed::HyperLogLog::estimate(sum, observed,
                                      static_cast<double>(est.cell_count()),
                                      zeros);
}

template double cardinality<HllPolicy>(const SlidingEstimator<HllPolicy>&);

double jaccard(const SlidingEstimator<MinHashPolicy>& a,
               const SlidingEstimator<MinHashPolicy>& b) {
  if (a.cell_count() != b.cell_count() ||
      a.policy().seed != b.policy().seed)
    throw std::invalid_argument("csm::jaccard: incompatible signatures");
  if (a.time() != b.time())
    throw std::invalid_argument("csm::jaccard: signatures not in lock-step");
  std::size_t match = 0;
  std::size_t compared = 0;
  for (std::size_t i = 0; i < a.cell_count(); ++i) {
    if (!a.legal(i)) continue;  // ages identical on both sides
    auto va = a.view(i).value;
    auto vb = b.view(i).value;
    if (va == MinHashPolicy::kEmpty && vb == MinHashPolicy::kEmpty) continue;
    ++compared;
    if (va == vb) ++match;
  }
  return compared == 0 ? 0.0
                       : static_cast<double>(match) / static_cast<double>(compared);
}

}  // namespace she::csm
