// StreamMonitor — one-stop sliding-window telemetry.
//
// Applications usually want several window statistics at once (the QoS
// example hand-rolls exactly this).  StreamMonitor bundles SHE-BF
// membership, SHE-BM or SHE-HLL cardinality, and SHE-CM frequency + heavy
// hitters behind a single insert(), with one memory budget split across
// the sketches, a consolidated report, and whole-monitor
// checkpoint/restore.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/io.hpp"
#include "runtime/ingest_pipeline.hpp"
#include "she/heavy_hitters.hpp"
#include "she/she_bloom.hpp"
#include "she/she_bitmap.hpp"
#include "she/she_hll.hpp"
#include "she/she_minhash.hpp"
#include "she/tuning.hpp"

namespace she {

/// Monitor configuration: one window, one budget, task toggles.
struct MonitorConfig {
  std::uint64_t window = 1u << 16;      ///< sliding window, in items
  std::size_t memory_bytes = 1u << 20;  ///< total budget across sketches
  bool track_membership = true;
  bool track_cardinality = true;
  bool track_frequency = true;
  bool track_similarity = false;  ///< keep a SHE-MH signature for jaccard()
  bool use_hll = false;        ///< cardinality via HLL instead of Bitmap
  double expected_cardinality = 0;  ///< 0 = assume window/4 (for Eq. 2)
  std::size_t heavy_hitter_slots = 64;
  std::size_t similarity_slots = 0;  ///< SHE-MH signature slots; 0 = auto
  std::uint32_t seed = 0;

  void validate() const;
};

/// A consolidated snapshot of the window.
struct MonitorReport {
  std::uint64_t items = 0;                  ///< stream position
  std::optional<double> cardinality;        ///< distinct keys in window
  std::vector<HeavyHitters::Entry> top;     ///< heaviest keys, descending

  /// Merge per-shard reports into one window view: items and cardinality
  /// sum (shards partition the key space), top lists concatenate, re-sort
  /// and truncate to `top_k`.  This is the merge ConcurrentMonitor::report
  /// performs — exposed so callers holding cached per-shard snapshots
  /// (the she_server query path) can combine them without fresh
  /// deserialization.
  [[nodiscard]] static MonitorReport combine(
      std::span<const MonitorReport> parts, std::size_t top_k);
};

class StreamMonitor {
 public:
  explicit StreamMonitor(const MonitorConfig& cfg);

  /// Feed one stream item to every enabled sketch.
  void insert(std::uint64_t key);

  /// Feed a batch (equivalent to insert() per key, in order): each enabled
  /// SHE sketch takes the whole batch through its pipelined insert_batch;
  /// heavy hitters update per key (candidate tracking is inherently
  /// per-item).  This is the path the ingest runtime's drain loop takes.
  void insert_batch(std::span<const std::uint64_t> keys);

  /// Was `key` seen in the window?  (Requires track_membership; one-sided.)
  [[nodiscard]] bool seen(std::uint64_t key) const;

  /// Window frequency of `key` (requires track_frequency).
  [[nodiscard]] std::uint64_t frequency(std::uint64_t key) const;

  /// Consolidated snapshot (top-k limited to `top_k`).
  [[nodiscard]] MonitorReport report(std::size_t top_k = 10) const;

  /// Estimated Jaccard similarity of two monitors' windows (requires
  /// track_similarity on both).  Both must share the similarity
  /// configuration (slots, window, seed) and be at the same stream time —
  /// SHE-MH signatures compare slot-by-slot over lock-step streams; throws
  /// std::invalid_argument otherwise.
  [[nodiscard]] static double jaccard(const StreamMonitor& a,
                                      const StreamMonitor& b);

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] const MonitorConfig& config() const { return cfg_; }

  /// Actual bytes across enabled sketches (close to, and never wildly
  /// above, cfg.memory_bytes).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Checkpoint / restore the whole monitor.
  void save(BinaryWriter& out) const;
  static StreamMonitor load(BinaryReader& in);

 private:
  MonitorConfig cfg_;
  std::uint64_t time_ = 0;
  std::optional<SheBloomFilter> membership_;
  std::optional<SheBitmap> card_bm_;
  std::optional<SheHyperLogLog> card_hll_;
  std::optional<HeavyHitters> freq_;
  std::optional<SheMinHash> sim_;
};

/// ConcurrentMonitor — StreamMonitor behind the ingest runtime.
///
/// Shards one logical monitor across `pipeline.shards` StreamMonitors
/// (window and budget split evenly, same key routing as Sharded<T>), feeds
/// them from `pipeline.producers` threads through lock-free rings, and
/// answers queries *while the stream is being ingested* from the shards'
/// seqlock-published snapshots: membership and frequency go to the owning
/// shard, cardinality sums across shards, top-k merges (shard key spaces
/// are disjoint).  Queries are safe from any thread at any time; push()
/// follows the IngestPipeline threading contract (one thread per producer
/// index, join producers before close()).
class ConcurrentMonitor {
 public:
  ConcurrentMonitor(const MonitorConfig& monitor,
                    const runtime::PipelineOptions& pipeline);

  /// Launch the shard workers (producers may enqueue before this).
  void start() { pipe_.start(); }

  /// Drain everything accepted, publish final snapshots, join workers.
  void close() { pipe_.close(); }

  /// Route one item from producer `producer`; false = rejected
  /// (DropNewest backpressure, BlockTimeout expiry, dead shard, or
  /// closing).
  bool push(std::size_t producer, std::uint64_t key) {
    return pipe_.push(producer, key);
  }

  /// push() each key in order; returns how many were accepted.
  std::size_t push_bulk(std::size_t producer,
                        std::span<const std::uint64_t> keys) {
    return pipe_.push_bulk(producer, keys);
  }

  /// push_bulk with a client idempotence identity (replays after lost
  /// acks dedupe per shard) and an absolute steady-clock deadline (0 =
  /// none) bounding any backpressure blocking.
  std::size_t push_bulk(std::size_t producer,
                        std::span<const std::uint64_t> keys,
                        std::uint64_t client_id, std::uint64_t client_seq,
                        std::int64_t deadline_ns = 0) {
    return pipe_.push_bulk(producer, keys, client_id, client_seq, deadline_ns);
  }

  /// Drain-then-publish barrier (IngestPipeline::sync): after this
  /// returns true, snapshot queries see every previously accepted push.
  bool flush(std::size_t timeout_ms = 5000) {
    return pipe_.sync(/*with_checkpoint=*/false, timeout_ms);
  }

  /// flush() plus a durable checkpoint frame per shard (no-op frames when
  /// the pipeline has no checkpoint_dir).
  bool save_now(std::size_t timeout_ms = 5000) {
    return pipe_.sync(/*with_checkpoint=*/true, timeout_ms);
  }

  /// Per-shard stream offset restored from a durable checkpoint when the
  /// pipeline options had `resume` set (0 otherwise); a replaying driver
  /// skips this many keys routed to shard `s`.
  [[nodiscard]] std::uint64_t resume_offset(std::size_t s) const {
    return pipe_.resume_offset(s);
  }

  /// True while any shard worker is dead by exception (or abandoned) and
  /// not yet restarted by the supervisor.
  [[nodiscard]] bool faulted() const { return pipe_.faulted(); }

  /// True while the pipeline is parked read-only after a disk fault
  /// (pushes throw runtime::DegradedError; queries keep working).
  [[nodiscard]] bool degraded() const { return pipe_.degraded(); }

  /// Snapshot queries (see class comment for semantics).
  [[nodiscard]] bool seen(std::uint64_t key) const;
  [[nodiscard]] std::uint64_t frequency(std::uint64_t key) const;
  [[nodiscard]] MonitorReport report(std::size_t top_k = 10) const;

  /// Estimated Jaccard similarity between two concurrent monitors with
  /// identical configurations (same shard count, window, budget, seed and
  /// track_similarity on both): shard s of `a` and shard s of `b` cover
  /// the same key partition, so their SHE-MH signatures are compared
  /// pairwise and averaged.  Requires lock-step per-shard stream times
  /// (e.g. both monitors fed the same item count through the same
  /// routing); throws std::invalid_argument otherwise.
  [[nodiscard]] static double jaccard(const ConcurrentMonitor& a,
                                      const ConcurrentMonitor& b);

  /// Owning-shard snapshot for batching several queries against one read.
  [[nodiscard]] StreamMonitor shard_snapshot(std::size_t s) const {
    return pipe_.snapshot(s);
  }
  /// Shard `s`'s raw seqlock slot, for runtime::SnapshotReader-style
  /// cached readers that only re-deserialize when the version moves.
  [[nodiscard]] const runtime::SeqlockSlot& shard_slot(std::size_t s) const {
    return pipe_.snapshot_slot(s);
  }
  [[nodiscard]] std::size_t shard_of(std::uint64_t key) const {
    return pipe_.shard_of(key);
  }
  [[nodiscard]] std::size_t shard_count() const { return pipe_.shard_count(); }

  [[nodiscard]] runtime::RuntimeStats stats() const { return pipe_.stats(); }
  [[nodiscard]] const runtime::PipelineOptions& options() const {
    return pipe_.options();
  }

  /// The pipeline's always-on metric registry, for Prometheus/JSON export.
  [[nodiscard]] const obs::Registry& metrics_registry() const {
    return pipe_.metrics_registry();
  }

 private:
  runtime::IngestPipeline<StreamMonitor> pipe_;
};

}  // namespace she
