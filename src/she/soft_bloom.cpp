#include "she/soft_bloom.hpp"

#include <stdexcept>

#include "common/int_math.hpp"

namespace she {

SoftSheBloomFilter::SoftSheBloomFilter(const SheConfig& cfg, unsigned hashes)
    : cfg_(cfg), hashes_(hashes), bits_(cfg.cells) {
  cfg_.validate();
  if (hashes == 0)
    throw std::invalid_argument("SoftSheBloomFilter: hashes must be > 0");
}

std::uint64_t SoftSheBloomFilter::swept_by(std::uint64_t t) const {
  // 128-bit product: M * t can exceed 64 bits on long streams.
  unsigned __int128 prod = static_cast<unsigned __int128>(cfg_.cells) * t;
  return static_cast<std::uint64_t>(prod / cfg_.tcycle());
}

void SoftSheBloomFilter::insert(std::uint64_t key) {
  // Advance the sweep: clean every cell the pointer passed during this tick.
  std::uint64_t from = swept_by(time_);
  ++time_;
  std::uint64_t to = swept_by(time_);
  for (std::uint64_t c = from; c < to; ++c)
    bits_.reset(static_cast<std::size_t>(c % cfg_.cells));

  for (unsigned i = 0; i < hashes_; ++i) bits_.set(position(key, i));
}

std::uint64_t SoftSheBloomFilter::cell_age(std::size_t pos) const {
  std::uint64_t s = swept_by(time_);
  if (s <= pos) return time_;  // never swept: content dates back to t = 0
  // Most recent global sweep index of this cell: largest c < s with
  // c === pos (mod M).
  std::uint64_t c = (s - 1) - static_cast<std::uint64_t>(floor_mod(
                                  static_cast<std::int64_t>(s - 1 - pos),
                                  static_cast<std::int64_t>(cfg_.cells)));
  // Sweep index c is executed on the first tick t with swept_by(t) > c.
  unsigned __int128 num = static_cast<unsigned __int128>(cfg_.tcycle()) * (c + 1);
  std::uint64_t t_clean = static_cast<std::uint64_t>(
      (num + cfg_.cells - 1) / cfg_.cells);  // ceil(T*(c+1)/M)
  return time_ - t_clean;
}

bool SoftSheBloomFilter::contains(std::uint64_t key) const {
  for (unsigned i = 0; i < hashes_; ++i) {
    std::size_t pos = position(key, i);
    if (cell_age(pos) < cfg_.window) continue;  // young: ignore
    if (!bits_.test(pos)) return false;
  }
  return true;
}

void SoftSheBloomFilter::clear() {
  bits_.clear();
  time_ = 0;
}

}  // namespace she
