// SHE-BF — Bloom filter under the SHE framework (paper Sec. 4.2), the
// hardware (lazy group-cleaning) version.
//
// Insert sets the k hashed bits after CheckGroup-ing their groups.  Query
// *ignores young bits* (age < N) and requires every remaining probed bit to
// be 1; a stale group reads as all-zero.  This preserves the Bloom filter's
// one-sided error exactly: SHE-BF never reports a false negative (property-
// tested), and false positives shrink as memory grows or alpha approaches
// the Eq. (2) optimum.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bit_array.hpp"
#include "common/bobhash.hpp"
#include "she/batch.hpp"
#include "she/config.hpp"
#include "she/group_clock.hpp"

namespace she {

class SheBloomFilter {
 public:
  /// `cfg.cells` bits in groups of `cfg.group_cells`, probed by `hashes`
  /// hash functions.  Default alpha for SHE-BF should come from
  /// optimal_alpha_bf() (the paper uses ~3 at its default settings).
  SheBloomFilter(const SheConfig& cfg, unsigned hashes);

  /// Insert one item; advances the stream clock by one.
  void insert(std::uint64_t key);

  /// Insert a batch (bit-for-bit equivalent to insert() per key, in
  /// order).  Runs the generic she::batch pipeline: hashes are computed a
  /// block ahead and the touched bit and mark lines prefetched, hiding
  /// DRAM latency when the bit array outgrows the cache.  Under vector
  /// dispatch (common/simd.hpp) stage 1 additionally hashes 8–16 keys per
  /// instruction and precomputes GroupClock marks; stage 2 and all
  /// observable state stay bit-identical to the scalar path.
  void insert_batch(std::span<const std::uint64_t> keys);

  /// Time-based windows: insert at explicit timestamp `t` (monotone
  /// non-decreasing; throws std::invalid_argument if it moves backwards).
  /// With insert_at, `window` counts time units instead of items.
  void insert_at(std::uint64_t key, std::uint64_t t);

  /// Batched insert_at: key[i] inserted at times[i] (monotone
  /// non-decreasing, validated up front; throws like insert_at).  Runs the
  /// same batch/SIMD pipeline as insert_batch, so time-based wrappers get
  /// the staged hot path instead of the scalar per-item loop.
  void insert_at_batch(std::span<const std::uint64_t> keys,
                       std::span<const std::uint64_t> times);

  /// Advance the clock to `t` without inserting, so queries reflect the
  /// window (t - N, t] even during arrival gaps.
  void advance_to(std::uint64_t t);

  /// Membership of `key` in the last-N window.  One-sided: a `false` answer
  /// is always correct; `true` may be a false positive.
  [[nodiscard]] bool contains(std::uint64_t key) const {
    return contains(key, cfg_.window);
  }

  /// Multi-window query: membership in the last `window` items for any
  /// window in [1, N] — one SHE structure answers every sub-window, with
  /// the same one-sided guarantee (cells of age >= window are usable; a
  /// zero such cell proves absence from the sub-window).  Smaller windows
  /// leave fewer usable probes, raising the FPR.
  [[nodiscard]] bool contains(std::uint64_t key, std::uint64_t window) const;

  /// Batched membership: answers are element-wise identical to
  /// contains(keys[i], window) but probe positions are hashed a block ahead
  /// with read-hinted prefetches (shared lines, nothing taken exclusive).
  /// out[i] != 0 means present.  Throws like contains() on a bad window.
  void contains_batch(std::span<const std::uint64_t> keys,
                      std::span<std::uint8_t> out) const {
    contains_batch(keys, out, cfg_.window);
  }
  void contains_batch(std::span<const std::uint64_t> keys,
                      std::span<std::uint8_t> out, std::uint64_t window) const;

  /// Reset to the empty state at time 0.
  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] const SheConfig& config() const { return cfg_; }
  [[nodiscard]] unsigned hash_count() const { return hashes_; }

  /// Payload + time-mark bytes (the figures' memory axis).
  [[nodiscard]] std::size_t memory_bytes() const {
    return bits_.memory_bytes() + clock_.memory_bytes();
  }

  /// Checkpoint the full sliding-window state; load() resumes with
  /// identical answers.
  void save(BinaryWriter& out) const;
  static SheBloomFilter load(BinaryReader& in);

 private:
  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned i) const {
    return BobHash32(cfg_.seed + i)(key) % cfg_.cells;
  }

  // Shared batch-insert core: times == nullptr means +1 per key.  Picks the
  // SIMD or scalar-reference stage 1; stage 2 is identical either way.
  void insert_many(std::span<const std::uint64_t> keys,
                   const std::uint64_t* times);
  void insert_many_simd(std::span<const std::uint64_t> keys,
                        const std::uint64_t* times);

  SheConfig cfg_;
  unsigned hashes_;
  GroupClock clock_;
  BitArray bits_;
  std::uint64_t time_ = 0;
  std::vector<batch::Slot> scratch_;  // insert_batch staging (not state)
};

}  // namespace she
