// Generic software-version SHE engine (paper Sec. 3.2) for any CSM policy.
//
// Instead of grouped lazy cleaning, a cleaning process sweeps the cell
// array left-to-right at constant speed (`cells / Tcycle` cells per tick),
// resetting one cell at a time and wrapping.  Cell ages follow from the
// sweep-pointer distance.  This is the idealized cell-granular cleaner the
// hardware version approximates block-wise; the tests show the two agree
// (and SoftSheBloomFilter is the BloomPolicy instantiation of this engine,
// verified answer-identical).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/int_math.hpp"
#include "she/config.hpp"
#include "she/csm.hpp"

namespace she::csm {

template <CsmPolicy Policy>
class SoftSlidingEstimator {
 public:
  using Cell = typename Policy::Cell;

  /// `cfg.group_cells` is ignored: the sweep is cell-granular.
  SoftSlidingEstimator(const SheConfig& cfg, Policy policy = Policy{})
      : cfg_(cfg), policy_(std::move(policy)), cells_(cfg.cells, Policy::empty_cell()) {
    cfg_.validate();
  }

  void insert(std::uint64_t key) { insert_at(key, time_ + 1); }

  void insert_at(std::uint64_t key, std::uint64_t t) {
    advance_to(t);
    unsigned k = policy_.probes(cells_.size());
    for (unsigned i = 0; i < k; ++i) {
      std::size_t pos = policy_.position(key, i, cells_.size());
      cells_[pos] = policy_.update(key, i, cells_[pos]);
    }
  }

  /// Advancing the clock performs the sweep for the elapsed ticks.
  void advance_to(std::uint64_t t) {
    if (t < time_)
      throw std::invalid_argument("SoftSlidingEstimator: time moved backwards");
    std::uint64_t from = swept_by(time_);
    time_ = t;
    std::uint64_t to = swept_by(time_);
    if (to - from >= cells_.size()) {
      std::fill(cells_.begin(), cells_.end(), Policy::empty_cell());
      return;
    }
    for (std::uint64_t c = from; c < to; ++c)
      cells_[static_cast<std::size_t>(c % cells_.size())] = Policy::empty_cell();
  }

  /// Items since cell `pos` was last swept; time() if never swept yet.
  [[nodiscard]] std::uint64_t cell_age(std::size_t pos) const {
    std::uint64_t s = swept_by(time_);
    if (s <= pos) return time_;
    std::uint64_t c = (s - 1) - static_cast<std::uint64_t>(floor_mod(
                                    static_cast<std::int64_t>(s - 1 - pos),
                                    static_cast<std::int64_t>(cells_.size())));
    unsigned __int128 num =
        static_cast<unsigned __int128>(cfg_.tcycle()) * (c + 1);
    auto t_clean =
        static_cast<std::uint64_t>((num + cells_.size() - 1) / cells_.size());
    return time_ - t_clean;
  }

  /// View of the probed cell with its age class (mirrors the hardware
  /// engine's query interface).
  [[nodiscard]] CellView<Cell> probe(std::uint64_t key, unsigned i) const {
    std::size_t pos = policy_.position(key, i, cells_.size());
    std::uint64_t age = cell_age(pos);
    CellAge cls = age < cfg_.window
                      ? CellAge::kYoung
                      : (age == cfg_.window ? CellAge::kPerfect : CellAge::kAged);
    return {cells_[pos], age, cls};
  }

  void clear() {
    std::fill(cells_.begin(), cells_.end(), Policy::empty_cell());
    time_ = 0;
  }

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] const SheConfig& config() const { return cfg_; }
  [[nodiscard]] const Policy& policy() const { return policy_; }

 private:
  [[nodiscard]] std::uint64_t swept_by(std::uint64_t t) const {
    unsigned __int128 prod = static_cast<unsigned __int128>(cells_.size()) * t;
    return static_cast<std::uint64_t>(prod / cfg_.tcycle());
  }

  SheConfig cfg_;
  Policy policy_;
  std::vector<Cell> cells_;
  std::uint64_t time_ = 0;
};

/// SHE-BF query on the soft engine (skip young probes; a zero mature probe
/// proves absence) — answer-identical to SoftSheBloomFilter (tested).
template <CsmPolicy P>
  requires std::same_as<P, BloomPolicy>
[[nodiscard]] bool contains(const SoftSlidingEstimator<P>& est, std::uint64_t key) {
  unsigned k = est.policy().probes(est.cell_count());
  for (unsigned i = 0; i < k; ++i) {
    auto cell = est.probe(key, i);
    if (cell.age_class == CellAge::kYoung) continue;
    if (cell.value == 0) return false;
  }
  return true;
}

}  // namespace she::csm
