#include "she/tuning.hpp"

#include <cmath>
#include <stdexcept>

namespace she {

double bf_retention_q(std::size_t cells, std::size_t group_cells,
                      double cardinality, unsigned hashes) {
  if (group_cells < 2)
    throw std::invalid_argument("bf_retention_q: group_cells must be >= 2");
  double groups = static_cast<double>(cells) / static_cast<double>(group_cells);
  double per_group = cardinality * hashes / groups;
  return std::pow(1.0 - 1.0 / static_cast<double>(group_cells), per_group);
}

double optimal_ratio(double q) {
  if (!(q > 0.0) || q >= 1.0)
    throw std::invalid_argument("optimal_ratio: q must be in (0,1)");
  const double lnq = std::log(q);
  auto dg = [&](double r) { return std::pow(q, r) * (r * lnq - 1.0) + q; };
  // dg is monotonically increasing, dg(0) = q - 1 < 0, dg(inf) -> q > 0.
  double lo = 0.0;
  double hi = 1.0;
  while (dg(hi) < 0.0) {
    hi *= 2.0;
    if (hi > 1e9) throw std::runtime_error("optimal_ratio: no root found");
  }
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    (dg(mid) < 0.0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

double optimal_alpha_bf(std::size_t cells, std::size_t group_cells,
                        double cardinality, unsigned hashes) {
  double q = bf_retention_q(cells, group_cells, cardinality, hashes);
  double alpha = optimal_ratio(q) - 1.0;
  return alpha > 0.01 ? alpha : 0.01;
}

double bf_fpr_model(double q, double ratio, unsigned hashes) {
  if (!(q > 0.0) || q >= 1.0)
    throw std::invalid_argument("bf_fpr_model: q must be in (0,1)");
  if (!(ratio > 0.0)) throw std::invalid_argument("bf_fpr_model: ratio must be > 0");
  double zero_fraction = (std::pow(q, ratio) - q) / (std::log(q) * ratio);
  return std::pow(1.0 - zero_fraction, static_cast<double>(hashes));
}

double expected_failed_groups(std::size_t groups, double cardinality,
                              unsigned hashes, double alpha) {
  double g = static_cast<double>(groups);
  double insertions = (1.0 + alpha) * cardinality * hashes;
  return g * std::exp(-insertions / g);
}

std::size_t max_groups_for_failure(double cardinality, unsigned hashes,
                                   double alpha, double eps) {
  if (!(eps > 0.0)) throw std::invalid_argument("max_groups_for_failure: eps <= 0");
  // E(G) is increasing in G; binary search the threshold.
  std::size_t lo = 1;
  std::size_t hi = 1;
  while (expected_failed_groups(hi, cardinality, hashes, alpha) <= eps &&
         hi < (std::size_t{1} << 40))
    hi *= 2;
  if (hi == 1) return 1;
  while (hi - lo > 1) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (expected_failed_groups(mid, cardinality, hashes, alpha) <= eps)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace she
