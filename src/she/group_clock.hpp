// GroupClock — the heart of SHE's hardware version (paper Sec. 3.3).
//
// The cell array is split into G groups.  Group gid carries a fixed time
// offset d_gid = -floor(Tcycle * gid / G), evenly spacing the groups'
// cleaning boundaries over one cycle, and a small stored time mark m[gid].
// The *current* mark of a group is
//
//     cur(gid, t) = floor((t + d_gid) / Tcycle) mod 2^mark_bits
//
// which flips once per Tcycle.  A group whose stored mark differs from the
// current mark has not been touched since its last cleaning boundary — its
// content is out-dated and must be reset before use (Algorithm 1's
// CheckGroup).  The *age* of a group,
//
//     age(gid, t) = (t + d_gid) mod Tcycle      (floored mod, in [0, Tcycle)),
//
// is the time since its most recent cleaning boundary and classifies its
// cells as young (< N), perfect (== N) or aged (> N).
//
// With the paper's 1-bit marks, a group untouched for two whole cycles
// aliases back to a "fresh" mark and retains stale content — the on-demand
// cleaning error analyzed in Sec. 5.1.  mark_bits > 1 suppresses that error
// exponentially and is provided for the ablation benches.
//
// GroupClock owns only the marks; the estimator owning the cells performs
// the actual reset when touch() reports one is due.  Queries use stale() /
// age() and never mutate, so estimator query paths stay const.
#pragma once

#include <cstddef>
#include <cstdint>

#include <vector>

#include "common/packed_array.hpp"

namespace she {

class GroupClock {
 public:
  /// `groups` groups, cleaning cycle of `tcycle` items, marks of
  /// `mark_bits` bits (1 = the paper's hardware design).
  GroupClock(std::size_t groups, std::uint64_t tcycle, unsigned mark_bits = 1);

  [[nodiscard]] std::size_t groups() const { return marks_.size(); }
  [[nodiscard]] std::uint64_t tcycle() const { return tcycle_; }

  /// Marks' memory footprint (counted toward the estimator's budget; the
  /// per-group offsets are derived constants — combinational logic on
  /// hardware — and are cached here purely as a software optimization).
  [[nodiscard]] std::size_t memory_bytes() const { return marks_.memory_bytes(); }

  /// Fixed offset of a group: d_gid = -floor(Tcycle * gid / G) <= 0.
  [[nodiscard]] std::int64_t offset(std::size_t gid) const { return offsets_[gid]; }

  /// Warm the cache line holding group `gid`'s mark.  CheckGroup reads the
  /// mark before the cell, so batched inserts prefetch both; `write` is
  /// true on insert paths (touch may store) and false on query paths.
  void prefetch(std::size_t gid, bool write = true) const {
    marks_.prefetch(gid, write);
  }

  /// Current mark: floor((t + d_gid) / Tcycle) mod 2^mark_bits.
  [[nodiscard]] std::uint64_t current_mark(std::size_t gid, std::uint64_t t) const;

  /// Items since the group's latest cleaning boundary, in [0, Tcycle).
  [[nodiscard]] std::uint64_t age(std::size_t gid, std::uint64_t t) const;

  /// True if the stored mark lags the current mark, i.e. the group content
  /// predates its latest cleaning boundary and must be treated as zero.
  [[nodiscard]] bool stale(std::size_t gid, std::uint64_t t) const {
    return marks_.get(gid) != current_mark(gid, t);
  }

  /// Algorithm 1 CheckGroup: if the group is stale, record the current mark
  /// and return true — the caller must reset the group's cells.
  bool touch(std::size_t gid, std::uint64_t t);

  // --- Division-free batch staging -----------------------------------------
  //
  // current_mark()/age() each cost one 64-bit division, which dominates the
  // staged insert loop once hashing is vectorized.  The batch paths instead
  // carry the time in decomposed form, t = cycle * Tcycle + rem with
  // rem in [0, Tcycle): since every offset d_gid lies in (-Tcycle, 0],
  // s = rem + d_gid lies in (-Tcycle, Tcycle) and
  //
  //     current_mark = (cycle - (s < 0 ? 1 : 0)) mod 2^mark_bits
  //     age          = s < 0 ? s + Tcycle : s
  //
  // — one division per batch (in split()) instead of one per probe, and the
  // per-probe part is pure add/compare/mask, which is what the AVX2 kernels
  // below vectorize.  All of these produce bit-identical results to the
  // division forms; tests/test_simd.cpp asserts it.

  /// Time t decomposed as cycle * Tcycle + rem, rem in [0, Tcycle).
  struct TimeParts {
    std::int64_t cycle = 0;
    std::int64_t rem = 0;
  };

  [[nodiscard]] TimeParts split(std::uint64_t t) const {
    return {static_cast<std::int64_t>(t / tcycle_),
            static_cast<std::int64_t>(t % tcycle_)};
  }

  /// Advance decomposed time by one item (t -> t + 1).
  void tick(TimeParts& p) const {
    if (++p.rem == static_cast<std::int64_t>(tcycle_)) {
      p.rem = 0;
      ++p.cycle;
    }
  }

  /// Advance decomposed time from `from` to `to` (to >= from).  Small steps
  /// stay division-free; a jump of a full cycle or more re-splits.
  void advance(TimeParts& p, std::uint64_t from, std::uint64_t to) const {
    const std::uint64_t delta = to - from;
    if (delta >= tcycle_) {
      p = split(to);
      return;
    }
    p.rem += static_cast<std::int64_t>(delta);
    if (p.rem >= static_cast<std::int64_t>(tcycle_)) {
      p.rem -= static_cast<std::int64_t>(tcycle_);
      ++p.cycle;
    }
  }

  /// current_mark(gid, t) for p == split(t), division-free.
  [[nodiscard]] std::uint64_t current_mark_at(TimeParts p, std::size_t gid) const {
    const std::int64_t s = p.rem + offsets_[gid];
    return static_cast<std::uint64_t>(p.cycle - (s < 0 ? 1 : 0)) &
           marks_.max_value();
  }

  /// age(gid, t) for p == split(t), division-free.
  [[nodiscard]] std::uint64_t age_at(TimeParts p, std::size_t gid) const {
    const std::int64_t s = p.rem + offsets_[gid];
    return static_cast<std::uint64_t>(
        s < 0 ? s + static_cast<std::int64_t>(tcycle_) : s);
  }

  /// The stored (possibly lagging) mark of a group.
  [[nodiscard]] std::uint64_t stored_mark(std::size_t gid) const {
    return marks_.get(gid);
  }

  /// CheckGroup against a mark precomputed by stage_marks*(): observable
  /// behavior (state + metrics) identical to touch(gid, t).  The fresh-mark
  /// case — all but one probe per group per cycle — is a single inline
  /// compare; only an actual cleaning takes the out-of-line path.
  bool touch_precomputed(std::size_t gid, std::uint64_t cur) {
    if (marks_.get(gid) == cur) return false;
    record_clean(gid, cur);
    return true;
  }

  /// curs[i] = current_mark_at(p, gids[i]); ages[i] = age_at(p, gids[i]) when
  /// `ages` is non-null.  Vectorized (gathered offsets) under AVX2 dispatch.
  void stage_marks(const std::uint32_t* gids, std::size_t n, TimeParts p,
                   std::uint32_t* curs, std::uint64_t* ages = nullptr) const;

  /// Same, over the contiguous group range [first, first + n) — the shape of
  /// full-array query scans and MinHash slot sweeps.
  void stage_marks_range(std::size_t first, std::size_t n, TimeParts p,
                         std::uint32_t* curs,
                         std::uint64_t* ages = nullptr) const;

  /// curs[i] = current mark of gids[i] at time t0 + i, where p0 == split(t0):
  /// the insert-batch shape, one item per slot.  Caller must guarantee
  /// p0.rem + n <= tcycle() so no lane wraps a cycle boundary (the estimators
  /// fall back to per-key staging when that fails, e.g. tiny test windows).
  void stage_marks_ramp(const std::uint32_t* gids, std::size_t n, TimeParts p0,
                        std::uint32_t* curs) const;

  /// curs[b * k + h] = current mark of gids[b * k + h] at time t0 + b, for b
  /// in [0, nkeys), h in [0, k): the k-probe insert shape, where key b's k
  /// slots all run at that key's time.  Same precondition as the ramp form,
  /// over keys: p0.rem + nkeys <= tcycle().
  void stage_marks_rep(const std::uint32_t* gids, std::size_t nkeys,
                       unsigned k, TimeParts p0, std::uint32_t* curs) const;

  /// Reset every mark to the state at time 0 (used by estimator clear()).
  void reset();

  /// Checkpoint to / restore from a binary stream.
  void save(BinaryWriter& out) const;
  static GroupClock load(BinaryReader& in);

 private:
  /// Slow path of touch_precomputed(): store the new mark and account the
  /// cleaning in metrics.  Precondition: marks_.get(gid) != cur.
  void record_clean(std::size_t gid, std::uint64_t cur);

  std::uint64_t tcycle_;
  std::vector<std::int64_t> offsets_;
  PackedArray marks_;
};

}  // namespace she
