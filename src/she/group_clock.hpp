// GroupClock — the heart of SHE's hardware version (paper Sec. 3.3).
//
// The cell array is split into G groups.  Group gid carries a fixed time
// offset d_gid = -floor(Tcycle * gid / G), evenly spacing the groups'
// cleaning boundaries over one cycle, and a small stored time mark m[gid].
// The *current* mark of a group is
//
//     cur(gid, t) = floor((t + d_gid) / Tcycle) mod 2^mark_bits
//
// which flips once per Tcycle.  A group whose stored mark differs from the
// current mark has not been touched since its last cleaning boundary — its
// content is out-dated and must be reset before use (Algorithm 1's
// CheckGroup).  The *age* of a group,
//
//     age(gid, t) = (t + d_gid) mod Tcycle      (floored mod, in [0, Tcycle)),
//
// is the time since its most recent cleaning boundary and classifies its
// cells as young (< N), perfect (== N) or aged (> N).
//
// With the paper's 1-bit marks, a group untouched for two whole cycles
// aliases back to a "fresh" mark and retains stale content — the on-demand
// cleaning error analyzed in Sec. 5.1.  mark_bits > 1 suppresses that error
// exponentially and is provided for the ablation benches.
//
// GroupClock owns only the marks; the estimator owning the cells performs
// the actual reset when touch() reports one is due.  Queries use stale() /
// age() and never mutate, so estimator query paths stay const.
#pragma once

#include <cstddef>
#include <cstdint>

#include <vector>

#include "common/packed_array.hpp"

namespace she {

class GroupClock {
 public:
  /// `groups` groups, cleaning cycle of `tcycle` items, marks of
  /// `mark_bits` bits (1 = the paper's hardware design).
  GroupClock(std::size_t groups, std::uint64_t tcycle, unsigned mark_bits = 1);

  [[nodiscard]] std::size_t groups() const { return marks_.size(); }
  [[nodiscard]] std::uint64_t tcycle() const { return tcycle_; }

  /// Marks' memory footprint (counted toward the estimator's budget; the
  /// per-group offsets are derived constants — combinational logic on
  /// hardware — and are cached here purely as a software optimization).
  [[nodiscard]] std::size_t memory_bytes() const { return marks_.memory_bytes(); }

  /// Fixed offset of a group: d_gid = -floor(Tcycle * gid / G) <= 0.
  [[nodiscard]] std::int64_t offset(std::size_t gid) const { return offsets_[gid]; }

  /// Warm the cache line holding group `gid`'s mark.  CheckGroup reads the
  /// mark before the cell, so batched inserts prefetch both; `write` is
  /// true on insert paths (touch may store) and false on query paths.
  void prefetch(std::size_t gid, bool write = true) const {
    marks_.prefetch(gid, write);
  }

  /// Current mark: floor((t + d_gid) / Tcycle) mod 2^mark_bits.
  [[nodiscard]] std::uint64_t current_mark(std::size_t gid, std::uint64_t t) const;

  /// Items since the group's latest cleaning boundary, in [0, Tcycle).
  [[nodiscard]] std::uint64_t age(std::size_t gid, std::uint64_t t) const;

  /// True if the stored mark lags the current mark, i.e. the group content
  /// predates its latest cleaning boundary and must be treated as zero.
  [[nodiscard]] bool stale(std::size_t gid, std::uint64_t t) const {
    return marks_.get(gid) != current_mark(gid, t);
  }

  /// Algorithm 1 CheckGroup: if the group is stale, record the current mark
  /// and return true — the caller must reset the group's cells.
  bool touch(std::size_t gid, std::uint64_t t);

  /// Reset every mark to the state at time 0 (used by estimator clear()).
  void reset();

  /// Checkpoint to / restore from a binary stream.
  void save(BinaryWriter& out) const;
  static GroupClock load(BinaryReader& in);

 private:
  std::uint64_t tcycle_;
  std::vector<std::int64_t> offsets_;
  PackedArray marks_;
};

}  // namespace she
