// Generic hash-ahead + prefetch batching for every CSM instantiation.
//
// SHE's insert is a single-stage memory operation per hashed cell, so on a
// CPU the hot path is latency-bound: hash(key) -> load line -> update is one
// long dependency chain per item once the cell array outgrows the cache.
// Because the Common Sketch Model separates *where* an update lands
// (position(key, i), time-independent) from *what* it does (F and the
// CheckGroup against the current time), any CSM sketch can be software-
// pipelined the same way:
//
//   stage 1  hash a block of keys, record every (cell, aux) slot, and issue
//            prefetches for the touched cell words *and* the GroupClock mark
//            words (CheckGroup reads the mark before the cell, so a cold
//            mark line stalls the update just as surely as a cold cell);
//   stage 2  replay the recorded slots in arrival order, advancing the
//            stream clock once per key and applying CheckGroup + F exactly
//            as the scalar path would.
//
// Stage 2 is byte-for-byte the scalar loop — positions never depend on
// time_, so hashing ahead changes nothing observable.  The two stages are
// double-buffered: block i+1 is hashed and prefetched *before* block i is
// applied, so every prefetch has a full block's worth of updates (not just
// the staging loop) to land behind before its line is demanded.  The tail
// shorter than a block runs through the same two stages, so per-key metric
// accounting is uniform across block and tail (one hash-call increment per
// batch, no scalar-path double counting).
//
// Block sizing: kSlotBudget caps the scratch footprint so a high-K sketch
// (SHE-MH probes every cell) degrades to small blocks instead of blowing
// the L1; kMaxBlock caps lookahead so prefetched lines are still resident
// when stage 2 reaches them.  See docs/INTERNALS.md "Batched hot path".
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace she::batch {

/// One staged update: the cell index plus an optional precomputed value
/// (SHE-HLL stages the rank, SHE-MH the candidate minimum) so stage 2 never
/// re-hashes.
struct Slot {
  std::size_t pos;
  std::uint64_t aux;
};

inline constexpr std::size_t kMaxBlock = 32;    ///< keys staged per block
inline constexpr std::size_t kSlotBudget = 256; ///< max staged slots per block

/// Keys per block for a sketch probing `k` cells per insert.
[[nodiscard]] constexpr std::size_t block_keys(unsigned k) {
  const std::size_t by_budget = kSlotBudget / std::max(1u, k);
  return std::clamp<std::size_t>(by_budget, 1, kMaxBlock);
}

/// Arrays below this footprint are effectively cache-resident: prefetching
/// them spends request slots (and drops on TLB misses) without hiding any
/// latency, so estimators gate each warm target on its memory_bytes().
inline constexpr std::size_t kPrefetchFootprint = std::size_t{1} << 19;

/// Fetch the line holding `p`; `write` picks the exclusive-state hint so
/// query batches don't steal lines from concurrent writers.
inline void prefetch_addr(const void* p, bool write) {
#if defined(__GNUC__) || defined(__clang__)
  if (write)
    __builtin_prefetch(p, 1, 3);
  else
    __builtin_prefetch(p, 0, 3);
#else
  (void)p;
  (void)write;
#endif
}

/// The two-stage pipeline over `keys`, `k` probes per key.
///
///   hash(key, probe) -> Slot        stage 1, once per (key, probe)
///   warm(slot)                      stage 1, issue prefetches
///   tick()                          stage 2, once per key, before its applies
///   apply(key, probe, slot)         stage 2, CheckGroup + F
///
/// `scratch` is caller-owned so steady-state batches never allocate.
template <typename HashFn, typename WarmFn, typename TickFn, typename ApplyFn>
void pipelined(std::span<const std::uint64_t> keys, unsigned k,
               std::vector<Slot>& scratch, HashFn&& hash, WarmFn&& warm,
               TickFn&& tick, ApplyFn&& apply) {
  const std::size_t block = block_keys(k);
  scratch.resize(2 * block * k);  // double buffer: stage b+1 while applying b
  const std::size_t nkeys = keys.size();

  auto stage = [&](std::size_t begin, std::size_t n, Slot* buf) {
    Slot* out = buf;
    for (std::size_t b = 0; b < n; ++b) {
      for (unsigned h = 0; h < k; ++h) {
        *out = hash(keys[begin + b], h);
        warm(*out);
        ++out;
      }
    }
  };
  auto drain = [&](std::size_t begin, std::size_t n, const Slot* in) {
    for (std::size_t b = 0; b < n; ++b) {
      tick();
      for (unsigned h = 0; h < k; ++h) apply(keys[begin + b], h, *in++);
    }
  };

  // Block b+1 is hashed and prefetched *before* block b is applied, so its
  // prefetches have a whole block's worth of updates to land behind.
  std::size_t cur = 0;
  std::size_t cur_n = std::min(block, nkeys);
  std::size_t buf = 0;
  if (cur_n > 0) stage(cur, cur_n, scratch.data());
  while (cur < nkeys) {
    const std::size_t next = cur + cur_n;
    const std::size_t next_n = next < nkeys ? std::min(block, nkeys - next) : 0;
    if (next_n > 0) stage(next, next_n, scratch.data() + (1 - buf) * block * k);
    drain(cur, cur_n, scratch.data() + buf * block * k);
    cur = next;
    cur_n = next_n;
    buf = 1 - buf;
  }
}

/// Block-stage variant of pipelined(): stage 1 receives the whole block
/// (`stage(begin, n, out)` must fill out[0 .. n*k) key-major and issue its
/// own prefetches) instead of one (key, probe) at a time.  This is the entry
/// point for the SIMD front-end — a lane-parallel stage hashes 8–16 keys per
/// instruction and precomputes GroupClock marks division-free — while stage 2
/// (tick + apply, the part that mutates cells in arrival order) remains the
/// exact scalar loop, so observable state is identical whichever stage-1
/// implementation ran.  Double-buffering is unchanged.
template <typename StageFn, typename TickFn, typename ApplyFn>
void pipelined_blocks(std::span<const std::uint64_t> keys, unsigned k,
                      std::vector<Slot>& scratch, StageFn&& stage,
                      TickFn&& tick, ApplyFn&& apply) {
  const std::size_t block = block_keys(k);
  scratch.resize(2 * block * k);
  const std::size_t nkeys = keys.size();

  auto drain = [&](std::size_t begin, std::size_t n, const Slot* in) {
    for (std::size_t b = 0; b < n; ++b) {
      tick();
      for (unsigned h = 0; h < k; ++h) apply(keys[begin + b], h, *in++);
    }
  };

  std::size_t cur = 0;
  std::size_t cur_n = std::min(block, nkeys);
  std::size_t buf = 0;
  if (cur_n > 0) stage(cur, cur_n, scratch.data());
  while (cur < nkeys) {
    const std::size_t next = cur + cur_n;
    const std::size_t next_n = next < nkeys ? std::min(block, nkeys - next) : 0;
    if (next_n > 0) stage(next, next_n, scratch.data() + (1 - buf) * block * k);
    drain(cur, cur_n, scratch.data() + buf * block * k);
    cur = next;
    cur_n = next_n;
    buf = 1 - buf;
  }
}

/// Block-stage variant of pipelined_query(), same contract as
/// pipelined_blocks(): `stage(begin, n, out)` fills n*k slots key-major,
/// `eval(index, slots)` sees each key's k staged slots in arrival order.
template <typename StageFn, typename EvalFn>
void pipelined_query_blocks(std::span<const std::uint64_t> keys, unsigned k,
                            std::vector<Slot>& scratch, StageFn&& stage,
                            EvalFn&& eval) {
  const std::size_t block = block_keys(k);
  scratch.resize(2 * block * k);
  const std::size_t nkeys = keys.size();

  std::size_t cur = 0;
  std::size_t cur_n = std::min(block, nkeys);
  std::size_t buf = 0;
  if (cur_n > 0) stage(cur, cur_n, scratch.data());
  while (cur < nkeys) {
    const std::size_t next = cur + cur_n;
    const std::size_t next_n = next < nkeys ? std::min(block, nkeys - next) : 0;
    if (next_n > 0) stage(next, next_n, scratch.data() + (1 - buf) * block * k);
    const Slot* in = scratch.data() + buf * block * k;
    for (std::size_t b = 0; b < cur_n; ++b) eval(cur + b, in + b * k);
    cur = next;
    cur_n = next_n;
    buf = 1 - buf;
  }
}

/// Read-side variant: stage and prefetch a block of probe positions, then
/// hand each key's `k` staged slots to `eval` in arrival order.  Evaluation
/// sees exactly the slots the scalar query would probe; only the memory
/// timing differs.
template <typename HashFn, typename WarmFn, typename EvalFn>
void pipelined_query(std::span<const std::uint64_t> keys, unsigned k,
                     std::vector<Slot>& scratch, HashFn&& hash, WarmFn&& warm,
                     EvalFn&& eval) {
  const std::size_t block = block_keys(k);
  scratch.resize(2 * block * k);  // double buffer, as in pipelined()
  const std::size_t nkeys = keys.size();

  auto stage = [&](std::size_t begin, std::size_t n, Slot* out) {
    for (std::size_t b = 0; b < n; ++b) {
      for (unsigned h = 0; h < k; ++h) {
        *out = hash(keys[begin + b], h);
        warm(*out);
        ++out;
      }
    }
  };

  std::size_t cur = 0;
  std::size_t cur_n = std::min(block, nkeys);
  std::size_t buf = 0;
  if (cur_n > 0) stage(cur, cur_n, scratch.data());
  while (cur < nkeys) {
    const std::size_t next = cur + cur_n;
    const std::size_t next_n = next < nkeys ? std::min(block, nkeys - next) : 0;
    if (next_n > 0) stage(next, next_n, scratch.data() + (1 - buf) * block * k);
    const Slot* in = scratch.data() + buf * block * k;
    for (std::size_t b = 0; b < cur_n; ++b) eval(cur + b, in + b * k);
    cur = next;
    cur_n = next_n;
    buf = 1 - buf;
  }
}

}  // namespace she::batch
