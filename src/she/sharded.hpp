// Sharded — multi-core scaling for SHE estimators.
//
// The FPGA pipeline processes one item per cycle; on CPUs the equivalent
// lever is key-space partitioning: route each key to one of S shards by an
// independent hash, give every shard its own estimator over a window of
// N/S items, and feed the shards from worker threads.  Because a shard only
// ever sees its own keys:
//
//   * membership / frequency queries go to the owning shard;
//   * cardinality adds across shards (distinct keys are partitioned);
//   * each shard's count-based window of N/S items approximates the global
//     last-N window — an item's shard-local depth is binomially distributed
//     around global_depth/S, so the window edge blurs by O(sqrt(N/S)) items
//     (quantified in the tests).  Deep-in-window items are still always
//     found: SHE-BF's no-false-negative property holds for any item whose
//     global depth is comfortably below N.
//
// insert_bulk() partitions a batch once and then runs the shards in
// parallel with std::thread; per-shard insertion order equals the arrival
// order, so the result is bit-identical to sequential routing (tested).
// Estimators exposing insert_batch() (every SHE estimator and
// StreamMonitor) get the hash-ahead + prefetch pipelined path per shard;
// anything else falls back to per-key insert().
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/bobhash.hpp"
#include "common/simd_hash.hpp"

namespace she {

template <typename Estimator>
class Sharded {
 public:
  /// `shards` estimators built by `factory(shard_index)`; `route_seed`
  /// selects the routing hash (independent of the estimators' families).
  Sharded(std::size_t shards,
          const std::function<Estimator(std::size_t)>& factory,
          std::uint64_t route_seed = 0x5ead5eedULL)
      : route_seed_(route_seed) {
    if (shards == 0) throw std::invalid_argument("Sharded: shards must be > 0");
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) shards_.push_back(factory(s));
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Owning shard of a key.
  [[nodiscard]] std::size_t shard_of(std::uint64_t key) const {
    return static_cast<std::size_t>(hash64(key, route_seed_) % shards_.size());
  }

  /// Route one item to its shard (single-threaded path).
  void insert(std::uint64_t key) { shards_[shard_of(key)].insert(key); }

  /// Partition `keys` by shard, then insert each partition on its own
  /// thread (up to `threads` running at once; 0 = hardware concurrency).
  /// Final state is identical to calling insert() over `keys` in order.
  void insert_bulk(std::span<const std::uint64_t> keys, unsigned threads = 0);

  /// Owning-shard access for queries, e.g.
  /// `sharded.owner(key).contains(key)`.
  [[nodiscard]] Estimator& owner(std::uint64_t key) { return shards_[shard_of(key)]; }
  [[nodiscard]] const Estimator& owner(std::uint64_t key) const {
    return shards_[shard_of(key)];
  }

  [[nodiscard]] Estimator& shard(std::size_t s) { return shards_[s]; }
  [[nodiscard]] const Estimator& shard(std::size_t s) const { return shards_[s]; }

  /// Total payload memory across shards.
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s.memory_bytes();
    return total;
  }

 private:
  std::uint64_t route_seed_;
  std::vector<Estimator> shards_;
};

/// Feed one shard its partition: the pipelined batch path when the
/// estimator has one (same final state as the scalar loop, tested), the
/// per-key loop otherwise.
template <typename Estimator>
void feed_shard(Estimator& est, std::span<const std::uint64_t> part) {
  if constexpr (requires { est.insert_batch(part); }) {
    est.insert_batch(part);
  } else {
    for (std::uint64_t key : part) est.insert(key);
  }
}

template <typename Estimator>
void Sharded<Estimator>::insert_bulk(std::span<const std::uint64_t> keys,
                                     unsigned threads) {
  const std::size_t n_shards = shards_.size();
  // Partition pass: per-shard key lists in arrival order.  The routing
  // hashes run through the lane-parallel hash64 kernel a chunk at a time
  // (identical values to the scalar hash64, so identical routing).
  std::vector<std::vector<std::uint64_t>> parts(n_shards);
  for (auto& p : parts) p.reserve(keys.size() / n_shards + 16);
  constexpr std::size_t kChunk = 256;
  std::uint64_t h[kChunk];
  for (std::size_t c0 = 0; c0 < keys.size(); c0 += kChunk) {
    const std::size_t n = std::min(kChunk, keys.size() - c0);
    simd::hash64_keys(keys.data() + c0, n, route_seed_, h);
    for (std::size_t j = 0; j < n; ++j)
      parts[static_cast<std::size_t>(h[j] % n_shards)].push_back(keys[c0 + j]);
  }

  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;  // unknown hardware: stay serial
  }
  // A thread beyond n_shards would own no shard; don't spawn it.
  threads = std::min(threads, static_cast<unsigned>(n_shards));
  if (threads <= 1 || n_shards == 1) {
    for (std::size_t s = 0; s < n_shards; ++s)
      feed_shard(shards_[s], std::span<const std::uint64_t>(parts[s]));
    return;
  }

  // Static block assignment: shard s handled by worker s % threads; each
  // shard is touched by exactly one thread, so no synchronization is
  // needed on the estimators.
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    pool.emplace_back([this, &parts, w, threads, n_shards] {
      for (std::size_t s = w; s < n_shards; s += threads)
        feed_shard(shards_[s], std::span<const std::uint64_t>(parts[s]));
    });
  }
  for (auto& t : pool) t.join();
}

/// Membership across shards (SHE-BF semantics preserved per shard).
template <typename E>
[[nodiscard]] bool sharded_contains(const Sharded<E>& s, std::uint64_t key) {
  return s.owner(key).contains(key);
}

/// Frequency across shards.
template <typename E>
[[nodiscard]] std::uint64_t sharded_frequency(const Sharded<E>& s,
                                              std::uint64_t key) {
  return s.owner(key).frequency(key);
}

/// Cardinality across shards: distinct keys are partitioned, so estimates
/// add.
template <typename E>
[[nodiscard]] double sharded_cardinality(const Sharded<E>& s) {
  double total = 0;
  for (std::size_t i = 0; i < s.shard_count(); ++i)
    total += s.shard(i).cardinality();
  return total;
}

}  // namespace she
