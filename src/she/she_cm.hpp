// SHE-CM — Count-Min sketch under the SHE framework (paper Sec. 4.4).
//
// Insert adds 1 to each of the k hashed 32-bit counters after CheckGroup-ing
// their groups.  The frequency query takes the minimum over the *mature*
// probed counters (age >= N); young counters are ignored because they may
// have lost in-window increments, which would break Count-Min's
// never-underestimate guarantee.  If every probe lands on a young group
// (probability (N/Tcycle)^k, e.g. 2^-8 at alpha = 1, k = 8) the query falls
// back to the minimum over all probes and may underestimate — the only
// two-sided corner, surfaced via `all_young_queries()`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bobhash.hpp"
#include "she/batch.hpp"
#include "she/config.hpp"
#include "she/group_clock.hpp"

namespace she {

class SheCountMin {
 public:
  SheCountMin(const SheConfig& cfg, unsigned hashes);

  /// Insert one item; advances the stream clock by one.
  void insert(std::uint64_t key);

  /// Insert a batch (bit-for-bit equivalent to insert() per key, in
  /// order) via the generic she::batch pipeline: the k counter positions
  /// are hashed a block ahead and the counter + mark lines prefetched —
  /// the same latency-hiding win as SHE-BF once the table leaves cache.
  void insert_batch(std::span<const std::uint64_t> keys);

  /// Time-based windows: insert at explicit timestamp `t` (monotone
  /// non-decreasing; throws std::invalid_argument if it moves backwards).
  /// With insert_at, `window` counts time units instead of items.
  void insert_at(std::uint64_t key, std::uint64_t t);

  /// Batched insert_at: key[i] inserted at times[i] (monotone
  /// non-decreasing, validated up front; throws like insert_at).  Runs the
  /// same batch/SIMD pipeline as insert_batch.
  void insert_at_batch(std::span<const std::uint64_t> keys,
                       std::span<const std::uint64_t> times);

  /// Advance the clock to `t` without inserting, so queries reflect the
  /// window (t - N, t] even during arrival gaps.
  void advance_to(std::uint64_t t);

  /// Estimated frequency of `key` in the last-N window.
  [[nodiscard]] std::uint64_t frequency(std::uint64_t key) const {
    return frequency(key, cfg_.window);
  }

  /// Multi-window query: frequency in the last `window` items for any
  /// window in [1, N] — counters with age >= window never under-count the
  /// sub-window; smaller windows include more aged overshoot.
  [[nodiscard]] std::uint64_t frequency(std::uint64_t key,
                                        std::uint64_t window) const;

  /// Batched frequency: answers are element-wise identical to
  /// frequency(keys[i], window) but the probe positions are hashed a block
  /// ahead with read-hinted prefetches.
  void frequency_batch(std::span<const std::uint64_t> keys,
                       std::span<std::uint64_t> out) const {
    frequency_batch(keys, out, cfg_.window);
  }
  void frequency_batch(std::span<const std::uint64_t> keys,
                       std::span<std::uint64_t> out,
                       std::uint64_t window) const;

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] const SheConfig& config() const { return cfg_; }
  [[nodiscard]] unsigned hash_count() const { return hashes_; }

  /// Queries so far whose probes were all young (fallback path taken).
  [[nodiscard]] std::uint64_t all_young_queries() const { return all_young_; }

  [[nodiscard]] std::size_t memory_bytes() const {
    return cells_.size() * sizeof(std::uint32_t) + clock_.memory_bytes();
  }

  /// Checkpoint the full sliding-window state; load() resumes with
  /// identical answers (the all-young diagnostic counter restarts at 0).
  void save(BinaryWriter& out) const;
  static SheCountMin load(BinaryReader& in);

 private:
  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned i) const {
    return BobHash32(cfg_.seed + i)(key) % cfg_.cells;
  }

  // Shared batch-insert core: times == nullptr means +1 per key.  Picks the
  // SIMD or scalar-reference stage 1; stage 2 is identical either way.
  void insert_many(std::span<const std::uint64_t> keys,
                   const std::uint64_t* times);
  void insert_many_simd(std::span<const std::uint64_t> keys,
                        const std::uint64_t* times);

  SheConfig cfg_;
  unsigned hashes_;
  GroupClock clock_;
  std::vector<std::uint32_t> cells_;
  std::uint64_t time_ = 0;
  mutable std::uint64_t all_young_ = 0;
  std::vector<batch::Slot> scratch_;  // insert_batch staging (not state)
};

}  // namespace she
