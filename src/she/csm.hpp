// The Common Sketch Model (CSM) as a compile-time policy framework —
// the paper's Fig. 2 abstraction made executable.
//
// The paper characterizes every base algorithm by a triple <C, K, F>:
// a cell type, a number of hashed locations, and an update function
// F(x, y) applied independently to each hashed cell.  SHE then extends any
// CSM algorithm to sliding windows via the group clock.  This header
// provides exactly that contract:
//
//   * `CsmPolicy` — the concept a base algorithm must model (cell type,
//     probe count, position hash, update function);
//   * `SlidingEstimator<Policy>` — the generic SHE hardware-version engine:
//     lazy group cleaning on insert, age-classified cell views for queries;
//   * the five paper policies (Bloom filter, Bitmap, HyperLogLog,
//     Count-Min, MinHash) plus their query functions, answer-equivalent to
//     the hand-specialized classes in she_*.hpp (tested);
//   * room for user-defined policies: any type modelling `CsmPolicy` gets
//     sliding-window behaviour for free (see examples/custom_sketch.cpp).
//
// The specialized classes remain the recommended API for the five standard
// tasks (they use packed cell storage); this layer is the extension point
// and the executable specification.
#pragma once

#include <concepts>
#include <stdexcept>
#include <cstdint>
#include <vector>

#include "common/bobhash.hpp"
#include "common/int_math.hpp"
#include "she/config.hpp"
#include "she/group_clock.hpp"

namespace she::csm {

/// The paper's <C, K, F> triple as a concept.  `probes(cells)` returns K
/// (which may equal the cell count, as for MinHash); `position` maps
/// (key, probe) to a cell index; `update` is F with the probe index
/// available so per-probe hash families work.
template <typename P>
concept CsmPolicy = requires(const P p, std::uint64_t key, unsigned probe,
                             std::size_t cells, typename P::Cell cell) {
  typename P::Cell;
  { p.probes(cells) } -> std::convertible_to<unsigned>;
  { p.position(key, probe, cells) } -> std::convertible_to<std::size_t>;
  { p.update(key, probe, cell) } -> std::convertible_to<typename P::Cell>;
  { P::empty_cell() } -> std::convertible_to<typename P::Cell>;
};

/// Age classification of one cell at query time (paper Sec. 3.2/3.3).
enum class CellAge : std::uint8_t {
  kYoung,    ///< age <  N: may have lost in-window items
  kPerfect,  ///< age == N: records the window exactly
  kAged,     ///< age >  N: may retain out-dated items
};

/// A queried cell: its effective value (stale groups read as empty) and
/// its age class.
template <typename Cell>
struct CellView {
  Cell value;
  std::uint64_t age;
  CellAge age_class;
};

/// Generic SHE hardware-version engine for any CSM policy.
template <CsmPolicy Policy>
class SlidingEstimator {
 public:
  using Cell = typename Policy::Cell;

  SlidingEstimator(const SheConfig& cfg, Policy policy = Policy{})
      : cfg_(cfg),
        policy_(std::move(policy)),
        clock_(cfg.groups(), cfg.tcycle(), cfg.mark_bits),
        cells_(cfg.cells, Policy::empty_cell()) {
    cfg_.validate();
  }

  /// Insert one item: CheckGroup then F, per hashed cell (Algorithm 1).
  void insert(std::uint64_t key) { insert_at(key, time_ + 1); }

  /// Time-based windows: insert at explicit timestamp `t` (monotone
  /// non-decreasing); `window` then counts time units instead of items.
  void insert_at(std::uint64_t key, std::uint64_t t) {
    advance_to(t);
    unsigned k = policy_.probes(cells_.size());
    for (unsigned i = 0; i < k; ++i) {
      std::size_t pos = policy_.position(key, i, cells_.size());
      touch_group(pos / cfg_.group_cells);
      cells_[pos] = policy_.update(key, i, cells_[pos]);
    }
  }

  /// Advance the clock without inserting (arrival gaps still age content).
  void advance_to(std::uint64_t t) {
    if (t < time_)
      throw std::invalid_argument("SlidingEstimator: time must not move backwards");
    time_ = t;
  }

  /// View of the cell probed by (key, probe) — const; stale groups read as
  /// empty without mutating.
  [[nodiscard]] CellView<Cell> probe(std::uint64_t key, unsigned i) const {
    return view(policy_.position(key, i, cells_.size()));
  }

  /// View of cell `pos`.
  [[nodiscard]] CellView<Cell> view(std::size_t pos) const {
    std::size_t gid = pos / cfg_.group_cells;
    std::uint64_t age = clock_.age(gid, time_);
    CellAge cls = age < cfg_.window
                      ? CellAge::kYoung
                      : (age == cfg_.window ? CellAge::kPerfect : CellAge::kAged);
    Cell value = clock_.stale(gid, time_) ? Policy::empty_cell() : cells_[pos];
    return {value, age, cls};
  }

  /// True if cell `pos`'s age is in the two-sided legal range
  /// [beta*N, Tcycle) (paper Sec. 4.1/4.3/4.5).
  [[nodiscard]] bool legal(std::size_t pos) const {
    auto lower =
        static_cast<std::uint64_t>(cfg_.beta * static_cast<double>(cfg_.window));
    return clock_.age(pos / cfg_.group_cells, time_) >= lower;
  }

  void clear() {
    std::fill(cells_.begin(), cells_.end(), Policy::empty_cell());
    clock_.reset();
    time_ = 0;
  }

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] const SheConfig& config() const { return cfg_; }
  [[nodiscard]] const Policy& policy() const { return policy_; }

  /// Memory model: policy-declared bits per cell plus the time marks.
  /// (Generic storage is one `Cell` per slot; the figure-grade specialized
  /// classes pack cells tightly, so budget experiments should use those.)
  [[nodiscard]] std::size_t memory_bytes() const {
    return ceil_div(cells_.size() * Policy::cell_bits(), 8) + clock_.memory_bytes();
  }

 private:
  void touch_group(std::size_t gid) {
    if (!clock_.touch(gid, time_)) return;
    std::size_t first = gid * cfg_.group_cells;
    std::size_t count = std::min(cfg_.group_cells, cells_.size() - first);
    std::fill(cells_.begin() + static_cast<std::ptrdiff_t>(first),
              cells_.begin() + static_cast<std::ptrdiff_t>(first + count),
              Policy::empty_cell());
  }

  SheConfig cfg_;
  Policy policy_;
  GroupClock clock_;
  std::vector<Cell> cells_;
  std::uint64_t time_ = 0;
};

// ---------------------------------------------------------------------------
// The five paper policies (Fig. 2's table).
// ---------------------------------------------------------------------------

/// Bloom filter: <bit, k, F(x,y) = 1>.
struct BloomPolicy {
  using Cell = std::uint8_t;
  unsigned hashes = 8;
  std::uint32_t seed = 0;

  [[nodiscard]] unsigned probes(std::size_t) const { return hashes; }
  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned i,
                                     std::size_t cells) const {
    return BobHash32(seed + i)(key) % cells;
  }
  [[nodiscard]] Cell update(std::uint64_t, unsigned, Cell) const { return 1; }
  static Cell empty_cell() { return 0; }
  static std::size_t cell_bits() { return 1; }
};

/// Bitmap: <bit, 1, F(x,y) = 1>.
struct BitmapPolicy {
  using Cell = std::uint8_t;
  std::uint32_t seed = 0;

  [[nodiscard]] unsigned probes(std::size_t) const { return 1; }
  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned,
                                     std::size_t cells) const {
    return BobHash32(seed)(key) % cells;
  }
  [[nodiscard]] Cell update(std::uint64_t, unsigned, Cell) const { return 1; }
  static Cell empty_cell() { return 0; }
  static std::size_t cell_bits() { return 1; }
};

/// HyperLogLog: <counter, 1, F(x,y) = max(rank(x), y)>.
struct HllPolicy {
  using Cell = std::uint8_t;
  std::uint32_t seed = 0;

  [[nodiscard]] unsigned probes(std::size_t) const { return 1; }
  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned,
                                     std::size_t cells) const {
    return BobHash32(seed)(key) % cells;
  }
  [[nodiscard]] Cell update(std::uint64_t key, unsigned, Cell old) const {
    std::uint8_t rank = hll_rank(BobHash32(seed + 0x5eed)(key), 32);
    if (rank > 31) rank = 31;  // 5-bit register ceiling
    return rank > old ? rank : old;
  }
  static Cell empty_cell() { return 0; }
  static std::size_t cell_bits() { return 5; }
};

/// Count-Min: <counter, k, F(x,y) = y + 1>.
struct CountMinPolicy {
  using Cell = std::uint32_t;
  unsigned hashes = 8;
  std::uint32_t seed = 0;

  [[nodiscard]] unsigned probes(std::size_t) const { return hashes; }
  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned i,
                                     std::size_t cells) const {
    return BobHash32(seed + i)(key) % cells;
  }
  [[nodiscard]] Cell update(std::uint64_t, unsigned, Cell old) const {
    return old == ~Cell{0} ? old : old + 1;
  }
  static Cell empty_cell() { return 0; }
  static std::size_t cell_bits() { return 32; }
};

/// MinHash: <counter, m, F(x,y) = min(hash_i(x), y)> — every cell is probed.
struct MinHashPolicy {
  using Cell = std::uint32_t;
  std::uint32_t seed = 0;
  static constexpr Cell kEmpty = 1u << 24;

  [[nodiscard]] unsigned probes(std::size_t cells) const {
    return static_cast<unsigned>(cells);
  }
  [[nodiscard]] std::size_t position(std::uint64_t, unsigned i,
                                     std::size_t) const {
    return i;  // slot i is updated by hash function i
  }
  [[nodiscard]] Cell update(std::uint64_t key, unsigned i, Cell old) const {
    Cell v = BobHash32(seed + i)(key) & 0xFFFFFFu;
    return v < old ? v : old;
  }
  static Cell empty_cell() { return kEmpty; }
  static std::size_t cell_bits() { return 24; }
};

// ---------------------------------------------------------------------------
// Query functions for the standard policies (paper Sec. 4).
// ---------------------------------------------------------------------------

/// SHE-BF membership: ignore young probes; any zero mature probe proves
/// absence (one-sided, no false negatives).
template <CsmPolicy P>
  requires std::same_as<P, BloomPolicy>
[[nodiscard]] bool contains(const SlidingEstimator<P>& est, std::uint64_t key) {
  unsigned k = est.policy().probes(est.cell_count());
  for (unsigned i = 0; i < k; ++i) {
    auto cell = est.probe(key, i);
    if (cell.age_class == CellAge::kYoung) continue;
    if (cell.value == 0) return false;
  }
  return true;
}

/// SHE-BM cardinality: linear counting over the legal cells, scaled to the
/// whole array.
template <CsmPolicy P>
  requires std::same_as<P, BitmapPolicy>
[[nodiscard]] double cardinality(const SlidingEstimator<P>& est);

/// SHE-HLL cardinality: bias-corrected harmonic mean over legal registers.
template <CsmPolicy P>
  requires std::same_as<P, HllPolicy>
[[nodiscard]] double cardinality(const SlidingEstimator<P>& est);

/// SHE-CM frequency: min over mature probes; min over all probes if every
/// probe is young (the documented two-sided corner).
template <CsmPolicy P>
  requires std::same_as<P, CountMinPolicy>
[[nodiscard]] std::uint64_t frequency(const SlidingEstimator<P>& est,
                                      std::uint64_t key) {
  std::uint64_t best_mature = ~std::uint64_t{0};
  std::uint64_t best_any = ~std::uint64_t{0};
  unsigned k = est.policy().probes(est.cell_count());
  for (unsigned i = 0; i < k; ++i) {
    auto cell = est.probe(key, i);
    std::uint64_t v = cell.value;
    if (v < best_any) best_any = v;
    if (cell.age_class != CellAge::kYoung && v < best_mature) best_mature = v;
  }
  return best_mature != ~std::uint64_t{0} ? best_mature : best_any;
}

/// SHE-MH similarity: equal legal slots over compared legal slots.
[[nodiscard]] double jaccard(const SlidingEstimator<MinHashPolicy>& a,
                             const SlidingEstimator<MinHashPolicy>& b);

}  // namespace she::csm
