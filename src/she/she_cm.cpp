#include "she/she_cm.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/she_metrics.hpp"
#include "she/batch_simd.hpp"

namespace she {

SheCountMin::SheCountMin(const SheConfig& cfg, unsigned hashes)
    : cfg_(cfg),
      hashes_(hashes),
      clock_(cfg.groups(), cfg.tcycle(), cfg.mark_bits),
      cells_(cfg.cells, 0) {
  cfg_.validate();
  if (hashes == 0) throw std::invalid_argument("SheCountMin: hashes must be > 0");
}

void SheCountMin::insert(std::uint64_t key) { insert_at(key, time_ + 1); }

void SheCountMin::advance_to(std::uint64_t t) {
  if (t < time_)
    throw std::invalid_argument("SheCountMin: time must not move backwards");
  time_ = t;
}

void SheCountMin::insert_at(std::uint64_t key, std::uint64_t t) {
  advance_to(t);
  if (obs::enabled()) obs::she_metrics().hash_calls.inc(hashes_);
  for (unsigned i = 0; i < hashes_; ++i) {
    std::size_t pos = position(key, i);
    std::size_t gid = pos / cfg_.group_cells;
    if (clock_.touch(gid, time_)) {
      std::size_t first = gid * cfg_.group_cells;
      std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
      std::fill(cells_.begin() + first, cells_.begin() + first + count, 0u);
    }
    std::uint32_t& c = cells_[pos];
    if (c != std::numeric_limits<std::uint32_t>::max()) ++c;
  }
}

void SheCountMin::insert_batch(std::span<const std::uint64_t> keys) {
  insert_many(keys, nullptr);
}

void SheCountMin::insert_at_batch(std::span<const std::uint64_t> keys,
                                  std::span<const std::uint64_t> times) {
  batch::validate_insert_times(keys, times, time_, "SheCountMin");
  insert_many(keys, times.data());
}

void SheCountMin::insert_many(std::span<const std::uint64_t> keys,
                              const std::uint64_t* times) {
  // The fused stage buffers hold one block of n * k slots; block_keys()
  // bounds that by kSlotBudget whenever k itself fits the budget.
  if (batch::simd_eligible(cfg_.cells) && hashes_ <= batch::kSlotBudget) {
    insert_many_simd(keys, times);
    return;
  }
  // Scalar reference path (also the SHE_FORCE_SCALAR path).
  // Cache-resident arrays are not worth prefetching (batch.hpp).
  const bool warm_cells =
      cells_.size() * sizeof(cells_[0]) >= batch::kPrefetchFootprint;
  const bool warm_marks = clock_.memory_bytes() >= batch::kPrefetchFootprint;
  std::size_t idx = 0;
  batch::pipelined(
      keys, hashes_, scratch_,
      [this](std::uint64_t key, unsigned h) {
        return batch::Slot{position(key, h), 0};
      },
      [this, warm_cells, warm_marks](const batch::Slot& s) {
        if (warm_cells) batch::prefetch_addr(&cells_[s.pos], true);
        if (warm_marks) clock_.prefetch(s.pos / cfg_.group_cells, true);
      },
      [this, times, &idx] {
        if (times != nullptr)
          time_ = times[idx++];
        else
          ++time_;
        if (obs::enabled()) obs::she_metrics().hash_calls.inc(hashes_);
      },
      [this](std::uint64_t, unsigned, const batch::Slot& s) {
        std::size_t gid = s.pos / cfg_.group_cells;
        if (clock_.touch(gid, time_)) {
          std::size_t first = gid * cfg_.group_cells;
          std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
          std::fill(cells_.begin() + first, cells_.begin() + first + count, 0u);
        }
        std::uint32_t& c = cells_[s.pos];
        if (c != std::numeric_limits<std::uint32_t>::max()) ++c;
      });
}

void SheCountMin::insert_many_simd(std::span<const std::uint64_t> keys,
                                   const std::uint64_t* times) {
  const bool warm_cells =
      cells_.size() * sizeof(cells_[0]) >= batch::kPrefetchFootprint;
  const bool warm_marks = clock_.memory_bytes() >= batch::kPrefetchFootprint;
  const FastDiv32 mod_cells(static_cast<std::uint32_t>(cfg_.cells));
  const FastDiv32 div_group(static_cast<std::uint32_t>(cfg_.group_cells));
  const batch::MarkStager stager(clock_, time_, times);
  std::size_t idx = 0;
  batch::pipelined_blocks(
      keys, hashes_, scratch_,
      // Stage 1, fused: one hash sweep, one position/group reduction and one
      // mark staging call over the whole key-major block (m = n * k slots),
      // then a single sequential write pass.  aux = cur << 32 | gid.
      [&](std::size_t begin, std::size_t n, batch::Slot* out) {
        std::uint32_t h32[batch::kSlotBudget];
        std::uint32_t pos[batch::kSlotBudget];
        std::uint32_t gid[batch::kSlotBudget];
        std::uint32_t cur[batch::kSlotBudget];
        const std::size_t m = n * hashes_;
        simd::bobhash32_keys_multi(keys.data() + begin, n, cfg_.seed, hashes_,
                                   h32);
        simd::positions_groups(h32, m, mod_cells, div_group, pos, gid);
        stager.stage_rep(begin, n, hashes_, gid, cur);
        for (std::size_t s = 0; s < m; ++s) {
          out[s].pos = pos[s];
          out[s].aux = (std::uint64_t{cur[s]} << 32) | gid[s];
          if (warm_cells) batch::prefetch_addr(&cells_[pos[s]], true);
          if (warm_marks) clock_.prefetch(gid[s], true);
        }
      },
      [this, times, &idx] {
        if (times != nullptr)
          time_ = times[idx++];
        else
          ++time_;
        if (obs::enabled()) obs::she_metrics().hash_calls.inc(hashes_);
      },
      // Stage 2: scalar CheckGroup + saturating increment, staged mark.
      [this](std::uint64_t, unsigned, const batch::Slot& s) {
        const std::size_t gid = s.aux & 0xFFFFFFFFu;
        if (clock_.touch_precomputed(gid, s.aux >> 32)) {
          std::size_t first = gid * cfg_.group_cells;
          std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
          std::fill(cells_.begin() + first, cells_.begin() + first + count, 0u);
        }
        std::uint32_t& c = cells_[s.pos];
        if (c != std::numeric_limits<std::uint32_t>::max()) ++c;
      });
}

void SheCountMin::frequency_batch(std::span<const std::uint64_t> keys,
                                  std::span<std::uint64_t> out,
                                  std::uint64_t window) const {
  if (window == 0 || window > cfg_.window)
    throw std::invalid_argument("SheCountMin: query window must be in [1, N]");
  if (out.size() < keys.size())
    throw std::invalid_argument("SheCountMin: frequency_batch output too small");
  const bool track = obs::enabled();
  const bool warm_cells =
      cells_.size() * sizeof(cells_[0]) >= batch::kPrefetchFootprint;
  const bool warm_marks = clock_.memory_bytes() >= batch::kPrefetchFootprint;
  // Local scratch keeps this const path thread-safe on shared readers.
  std::vector<batch::Slot> scratch;
  if (batch::simd_eligible(cfg_.cells) && hashes_ <= batch::kSlotBudget) {
    // SIMD stage 1: fused hash sweep + staged ages and staleness at the
    // (fixed) query time; aux = age << 1 | stale.  Evaluation replays the
    // scalar min-over-mature logic against the staged values.
    const FastDiv32 mod_cells(static_cast<std::uint32_t>(cfg_.cells));
    const FastDiv32 div_group(static_cast<std::uint32_t>(cfg_.group_cells));
    const GroupClock::TimeParts now = clock_.split(time_);
    batch::pipelined_query_blocks(
        keys, hashes_, scratch,
        [&](std::size_t begin, std::size_t n, batch::Slot* slots) {
          std::uint32_t h32[batch::kSlotBudget];
          std::uint32_t pos[batch::kSlotBudget];
          std::uint32_t gid[batch::kSlotBudget];
          std::uint32_t cur[batch::kSlotBudget];
          std::uint64_t age[batch::kSlotBudget];
          const std::size_t m = n * hashes_;
          simd::bobhash32_keys_multi(keys.data() + begin, n, cfg_.seed,
                                     hashes_, h32);
          simd::positions_groups(h32, m, mod_cells, div_group, pos, gid);
          clock_.stage_marks(gid, m, now, cur, age);
          for (std::size_t s = 0; s < m; ++s) {
            const std::uint64_t stale =
                clock_.stored_mark(gid[s]) != cur[s] ? 1 : 0;
            slots[s].pos = pos[s];
            slots[s].aux = (age[s] << 1) | stale;
            if (warm_cells) batch::prefetch_addr(&cells_[pos[s]], false);
            if (warm_marks) clock_.prefetch(gid[s], false);
          }
        },
        [&](std::size_t i, const batch::Slot* slots) {
          std::uint64_t best_mature = std::numeric_limits<std::uint64_t>::max();
          std::uint64_t best_any = std::numeric_limits<std::uint64_t>::max();
          obs::AgeClassCounts cls;
          for (unsigned h = 0; h < hashes_; ++h) {
            const std::uint64_t age = slots[h].aux >> 1;
            if (track) cls.add(age, window);
            const bool stale = (slots[h].aux & 1) != 0;
            const std::uint64_t value = stale ? 0 : cells_[slots[h].pos];
            best_any = std::min(best_any, value);
            if (age >= window) best_mature = std::min(best_mature, value);
          }
          if (track) cls.commit(true);
          if (best_mature != std::numeric_limits<std::uint64_t>::max()) {
            out[i] = best_mature;
          } else {
            ++all_young_;
            if (track) obs::she_metrics().cm_all_young_queries.inc();
            out[i] = best_any;
          }
        });
    if (track)
      obs::she_metrics().hash_calls.inc(
          static_cast<std::uint64_t>(keys.size()) * hashes_);
    return;
  }
  batch::pipelined_query(
      keys, hashes_, scratch,
      [this](std::uint64_t key, unsigned h) {
        return batch::Slot{position(key, h), 0};
      },
      [this, warm_cells, warm_marks](const batch::Slot& s) {
        if (warm_cells) batch::prefetch_addr(&cells_[s.pos], false);
        if (warm_marks) clock_.prefetch(s.pos / cfg_.group_cells, false);
      },
      [&](std::size_t i, const batch::Slot* slots) {
        // Same min-over-mature logic as scalar frequency(); positions
        // staged, hashed exactly once per probe.
        std::uint64_t best_mature = std::numeric_limits<std::uint64_t>::max();
        std::uint64_t best_any = std::numeric_limits<std::uint64_t>::max();
        obs::AgeClassCounts cls;
        for (unsigned h = 0; h < hashes_; ++h) {
          std::size_t pos = slots[h].pos;
          std::size_t gid = pos / cfg_.group_cells;
          std::uint64_t age = clock_.age(gid, time_);
          if (track) cls.add(age, window);
          std::uint64_t value = clock_.stale(gid, time_) ? 0 : cells_[pos];
          best_any = std::min(best_any, value);
          if (age >= window) best_mature = std::min(best_mature, value);
        }
        if (track) cls.commit(true);
        if (best_mature != std::numeric_limits<std::uint64_t>::max()) {
          out[i] = best_mature;
        } else {
          ++all_young_;
          if (track) obs::she_metrics().cm_all_young_queries.inc();
          out[i] = best_any;
        }
      });
  if (track)
    obs::she_metrics().hash_calls.inc(
        static_cast<std::uint64_t>(keys.size()) * hashes_);
}

std::uint64_t SheCountMin::frequency(std::uint64_t key,
                                     std::uint64_t window) const {
  if (window == 0 || window > cfg_.window)
    throw std::invalid_argument("SheCountMin: query window must be in [1, N]");
  std::uint64_t best_mature = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best_any = std::numeric_limits<std::uint64_t>::max();
  for (unsigned i = 0; i < hashes_; ++i) {
    std::size_t pos = position(key, i);
    std::size_t gid = pos / cfg_.group_cells;
    std::uint64_t value = clock_.stale(gid, time_) ? 0 : cells_[pos];
    best_any = std::min(best_any, value);
    if (clock_.age(gid, time_) >= window)
      best_mature = std::min(best_mature, value);
  }
  // Telemetry runs as a separate pass so the hot loop above stays exactly
  // as tight with the toggle off; redoing the position math with the
  // toggle on is an accepted enabled-mode cost.
  const bool track = obs::enabled();
  if (track) {
    obs::AgeClassCounts cls;
    for (unsigned i = 0; i < hashes_; ++i) {
      std::size_t gid = position(key, i) / cfg_.group_cells;
      cls.add(clock_.age(gid, time_), window);
    }
    cls.commit(true);
    obs::she_metrics().hash_calls.inc(2 * hashes_);
  }
  if (best_mature != std::numeric_limits<std::uint64_t>::max()) return best_mature;
  ++all_young_;  // every probe young: best-effort answer, may underestimate
  if (track) obs::she_metrics().cm_all_young_queries.inc();
  return best_any;
}

void SheCountMin::save(BinaryWriter& out) const {
  out.tag("SHCM");
  cfg_.save(out);
  out.u32(hashes_);
  out.u64(time_);
  clock_.save(out);
  out.u32_vector(cells_);
}

SheCountMin SheCountMin::load(BinaryReader& in) {
  in.expect_tag("SHCM");
  SheConfig cfg = SheConfig::load(in);
  unsigned hashes = in.u32();
  SheCountMin cm(cfg, hashes);
  cm.time_ = in.u64();
  cm.clock_ = GroupClock::load(in);
  cm.cells_ = in.u32_vector();
  if (cm.clock_.groups() != cfg.groups() || cm.cells_.size() != cfg.cells)
    throw std::runtime_error("SheCountMin::load: shape mismatch");
  return cm;
}

void SheCountMin::clear() {
  std::fill(cells_.begin(), cells_.end(), 0u);
  clock_.reset();
  time_ = 0;
  all_young_ = 0;
}

}  // namespace she
