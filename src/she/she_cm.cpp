#include "she/she_cm.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/she_metrics.hpp"

namespace she {

SheCountMin::SheCountMin(const SheConfig& cfg, unsigned hashes)
    : cfg_(cfg),
      hashes_(hashes),
      clock_(cfg.groups(), cfg.tcycle(), cfg.mark_bits),
      cells_(cfg.cells, 0) {
  cfg_.validate();
  if (hashes == 0) throw std::invalid_argument("SheCountMin: hashes must be > 0");
}

void SheCountMin::insert(std::uint64_t key) { insert_at(key, time_ + 1); }

void SheCountMin::advance_to(std::uint64_t t) {
  if (t < time_)
    throw std::invalid_argument("SheCountMin: time must not move backwards");
  time_ = t;
}

void SheCountMin::insert_at(std::uint64_t key, std::uint64_t t) {
  advance_to(t);
  if (obs::enabled()) obs::she_metrics().hash_calls.inc(hashes_);
  for (unsigned i = 0; i < hashes_; ++i) {
    std::size_t pos = position(key, i);
    std::size_t gid = pos / cfg_.group_cells;
    if (clock_.touch(gid, time_)) {
      std::size_t first = gid * cfg_.group_cells;
      std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
      std::fill(cells_.begin() + first, cells_.begin() + first + count, 0u);
    }
    std::uint32_t& c = cells_[pos];
    if (c != std::numeric_limits<std::uint32_t>::max()) ++c;
  }
}

std::uint64_t SheCountMin::frequency(std::uint64_t key,
                                     std::uint64_t window) const {
  if (window == 0 || window > cfg_.window)
    throw std::invalid_argument("SheCountMin: query window must be in [1, N]");
  std::uint64_t best_mature = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best_any = std::numeric_limits<std::uint64_t>::max();
  for (unsigned i = 0; i < hashes_; ++i) {
    std::size_t pos = position(key, i);
    std::size_t gid = pos / cfg_.group_cells;
    std::uint64_t value = clock_.stale(gid, time_) ? 0 : cells_[pos];
    best_any = std::min(best_any, value);
    if (clock_.age(gid, time_) >= window)
      best_mature = std::min(best_mature, value);
  }
  // Telemetry runs as a separate pass so the hot loop above stays exactly
  // as tight with the toggle off; redoing the position math with the
  // toggle on is an accepted enabled-mode cost.
  const bool track = obs::enabled();
  if (track) {
    obs::AgeClassCounts cls;
    for (unsigned i = 0; i < hashes_; ++i) {
      std::size_t gid = position(key, i) / cfg_.group_cells;
      cls.add(clock_.age(gid, time_), window);
    }
    cls.commit(true);
    obs::she_metrics().hash_calls.inc(2 * hashes_);
  }
  if (best_mature != std::numeric_limits<std::uint64_t>::max()) return best_mature;
  ++all_young_;  // every probe young: best-effort answer, may underestimate
  if (track) obs::she_metrics().cm_all_young_queries.inc();
  return best_any;
}

void SheCountMin::save(BinaryWriter& out) const {
  out.tag("SHCM");
  cfg_.save(out);
  out.u32(hashes_);
  out.u64(time_);
  clock_.save(out);
  out.u32_vector(cells_);
}

SheCountMin SheCountMin::load(BinaryReader& in) {
  in.expect_tag("SHCM");
  SheConfig cfg = SheConfig::load(in);
  unsigned hashes = in.u32();
  SheCountMin cm(cfg, hashes);
  cm.time_ = in.u64();
  cm.clock_ = GroupClock::load(in);
  cm.cells_ = in.u32_vector();
  if (cm.clock_.groups() != cfg.groups() || cm.cells_.size() != cfg.cells)
    throw std::runtime_error("SheCountMin::load: shape mismatch");
  return cm;
}

void SheCountMin::clear() {
  std::fill(cells_.begin(), cells_.end(), 0u);
  clock_.reset();
  time_ = 0;
  all_young_ = 0;
}

}  // namespace she
