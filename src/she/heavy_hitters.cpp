#include "she/heavy_hitters.hpp"

#include <algorithm>
#include <stdexcept>

namespace she {

HeavyHitters::HeavyHitters(const SheConfig& cfg, unsigned hashes,
                           std::size_t capacity)
    : sketch_(cfg, hashes), capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("HeavyHitters: capacity must be > 0");
  candidates_.reserve(capacity + 1);
}

void HeavyHitters::insert(std::uint64_t key) {
  sketch_.insert(key);
  // Periodic refresh: stored candidate estimates decay with the window, so
  // re-estimate the whole table once per `capacity_` inserts (amortized
  // O(1) sketch queries per item).
  if (++since_refresh_ >= capacity_) {
    since_refresh_ = 0;
    for (auto& [cand, est] : candidates_) est = sketch_.frequency(cand);
  }
  maybe_admit(key, sketch_.frequency(key));
}

void HeavyHitters::maybe_admit(std::uint64_t key, std::uint64_t estimate) {
  auto it = candidates_.find(key);
  if (it != candidates_.end()) {
    it->second = estimate;
    return;
  }
  if (candidates_.size() < capacity_) {
    candidates_.emplace(key, estimate);
    return;
  }
  // Evict the weakest stored candidate if the newcomer beats it.  Stored
  // values may lag by up to one refresh period, which only makes eviction
  // conservative.
  auto weakest = candidates_.begin();
  for (auto cand = candidates_.begin(); cand != candidates_.end(); ++cand)
    if (cand->second < weakest->second) weakest = cand;
  if (estimate > weakest->second) {
    candidates_.erase(weakest);
    candidates_.emplace(key, estimate);
  }
}

std::vector<HeavyHitters::Entry> HeavyHitters::top(std::size_t k) const {
  std::vector<Entry> out;
  out.reserve(candidates_.size());
  for (const auto& [key, stale] : candidates_) {
    (void)stale;
    out.push_back({key, sketch_.frequency(key)});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.estimate != b.estimate ? a.estimate > b.estimate : a.key < b.key;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<HeavyHitters::Entry> HeavyHitters::candidates() const {
  std::vector<Entry> out;
  out.reserve(candidates_.size());
  for (const auto& [key, est] : candidates_) out.push_back({key, est});
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  return out;
}

void HeavyHitters::restore_candidates(const std::vector<Entry>& entries) {
  candidates_.clear();
  for (const Entry& e : entries) {
    if (candidates_.size() >= capacity_) break;
    candidates_.emplace(e.key, e.estimate);
  }
  since_refresh_ = 0;
}

void HeavyHitters::clear() {
  sketch_.clear();
  candidates_.clear();
  since_refresh_ = 0;
}

}  // namespace she
