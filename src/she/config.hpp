// Shared configuration for every SHE estimator (Table 1 notation).
//
//   N       window        — size of the sliding window (count-based: the
//                           last N inserted items)
//   M       cells         — number of cells in the base sketch
//   w       group_cells   — cells per group (G = M / w groups)
//   alpha                 — (Tcycle - N) / N; Tcycle = (1 + alpha) * N
//   beta                  — two-sided queries accept groups with age in
//                           [beta*N, Tcycle); beta < 1 but close to 1
//   mark_bits             — width of the per-group time mark.  The paper's
//                           hardware design uses 1 bit; wider marks remove
//                           the mark-aliasing error and exist for ablation.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/io.hpp"

namespace she {

struct SheConfig {
  std::uint64_t window = 1u << 16;  ///< N, in items
  std::size_t cells = 1u << 16;     ///< M
  std::size_t group_cells = 64;     ///< w
  double alpha = 0.2;               ///< (Tcycle - N) / N
  double beta = 0.9;                ///< legal-age lower bound fraction
  std::uint32_t seed = 0;           ///< hash family selector
  unsigned mark_bits = 1;           ///< time-mark width (1 = paper's design)

  /// Cleaning-cycle length in items: round((1 + alpha) * N).  Always > N.
  [[nodiscard]] std::uint64_t tcycle() const;

  /// Number of groups G = ceil(M / w).
  [[nodiscard]] std::size_t groups() const;

  /// Throws std::invalid_argument if any field is out of range.
  void validate() const;

  /// Checkpoint to / restore from a binary stream.
  void save(BinaryWriter& out) const;
  static SheConfig load(BinaryReader& in);
};

}  // namespace she
