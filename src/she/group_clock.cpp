#include "she/group_clock.hpp"

#include <stdexcept>

#include "common/int_math.hpp"
#include "common/simd.hpp"
#include "obs/she_metrics.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace she {

GroupClock::GroupClock(std::size_t groups, std::uint64_t tcycle, unsigned mark_bits)
    : tcycle_(tcycle), offsets_(groups), marks_(groups, mark_bits) {
  if (groups == 0) throw std::invalid_argument("GroupClock: groups must be > 0");
  if (tcycle == 0) throw std::invalid_argument("GroupClock: tcycle must be > 0");
  // d_gid = -floor(Tcycle * gid / G); gid < G keeps the magnitude below
  // Tcycle.  Cached: recomputing costs a 64-bit division on every access.
  for (std::size_t gid = 0; gid < groups; ++gid)
    offsets_[gid] = -static_cast<std::int64_t>(tcycle * gid / groups);
  reset();
}

std::uint64_t GroupClock::current_mark(std::size_t gid, std::uint64_t t) const {
  std::int64_t shifted = static_cast<std::int64_t>(t) + offsets_[gid];
  std::int64_t cycle = floor_div(shifted, static_cast<std::int64_t>(tcycle_));
  // Power-of-two modulus: masking a two's-complement value equals the
  // floored modulo, so negative cycle indices (before a group's first
  // boundary) wrap correctly.
  return static_cast<std::uint64_t>(cycle) & marks_.max_value();
}

std::uint64_t GroupClock::age(std::size_t gid, std::uint64_t t) const {
  std::int64_t shifted = static_cast<std::int64_t>(t) + offset(gid);
  return static_cast<std::uint64_t>(
      floor_mod(shifted, static_cast<std::int64_t>(tcycle_)));
}

bool GroupClock::touch(std::size_t gid, std::uint64_t t) {
  return touch_precomputed(gid, current_mark(gid, t));
}

void GroupClock::record_clean(std::size_t gid, std::uint64_t cur) {
  const std::uint64_t stored = marks_.get(gid);
  marks_.set(gid, cur);
  if (obs::enabled()) {
    obs::SheMetrics& m = obs::she_metrics();
    m.groupclock_lazy_clean.inc();
    // Boundaries crossed since the last touch, modulo the mark space; with
    // b-bit marks a lag of exactly 2^b cycles is invisible (the aliasing
    // error of Sec. 5.1), so this undercounts precisely when that occurs.
    m.groupclock_mark_flips.inc((cur - stored) & marks_.max_value());
  }
}

// ---------------------------------------------------------------------------
// Batch mark/age staging.  Scalar loops are the reference; the AVX2 kernels
// compute the same (cycle - (s < 0)) & mask / s + (s < 0 ? T : 0) forms on
// 4 x i64 lanes.  NEON dispatch intentionally uses the scalar loops: with
// only 2 x i64 lanes, no gather, and division already hoisted out, the
// vector form has nothing left to win.
// ---------------------------------------------------------------------------
namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

// Pack the low dword of each 64-bit lane into the lower 128 bits.
__attribute__((target("avx2"), always_inline)) inline __m128i pack_low32(
    __m256i v) {
  const __m256i perm =
      _mm256_permutevar8x32_epi32(v, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
  return _mm256_castsi256_si128(perm);
}

__attribute__((target("avx2"))) void stage_gather_avx2(
    const std::int64_t* offsets, const std::uint32_t* gids, std::size_t n,
    std::int64_t cycle, std::int64_t rem, std::int64_t tcycle,
    std::uint64_t mask, std::uint32_t* curs, std::uint64_t* ages) noexcept {
  const __m256i vrem = _mm256_set1_epi64x(rem);
  const __m256i vcyc = _mm256_set1_epi64x(cycle);
  const __m256i vtc = _mm256_set1_epi64x(tcycle);
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i idx = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(gids + i)));
    const __m256i off = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(offsets), idx, 8);
    const __m256i s = _mm256_add_epi64(vrem, off);
    const __m256i neg = _mm256_cmpgt_epi64(zero, s);  // all-ones where s < 0
    const __m256i cur =
        _mm256_and_si256(_mm256_add_epi64(vcyc, neg), vmask);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(curs + i), pack_low32(cur));
    if (ages != nullptr) {
      const __m256i age = _mm256_add_epi64(s, _mm256_and_si256(neg, vtc));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages + i), age);
    }
  }
  for (; i < n; ++i) {
    const std::int64_t s = rem + offsets[gids[i]];
    curs[i] = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(cycle - (s < 0 ? 1 : 0)) & mask);
    if (ages != nullptr)
      ages[i] = static_cast<std::uint64_t>(s < 0 ? s + tcycle : s);
  }
}

__attribute__((target("avx2"))) void stage_range_avx2(
    const std::int64_t* offsets, std::size_t first, std::size_t n,
    std::int64_t cycle, std::int64_t rem, std::int64_t tcycle,
    std::uint64_t mask, std::uint32_t* curs, std::uint64_t* ages) noexcept {
  const __m256i vrem = _mm256_set1_epi64x(rem);
  const __m256i vcyc = _mm256_set1_epi64x(cycle);
  const __m256i vtc = _mm256_set1_epi64x(tcycle);
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i off = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(offsets + first + i));
    const __m256i s = _mm256_add_epi64(vrem, off);
    const __m256i neg = _mm256_cmpgt_epi64(zero, s);
    const __m256i cur =
        _mm256_and_si256(_mm256_add_epi64(vcyc, neg), vmask);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(curs + i), pack_low32(cur));
    if (ages != nullptr) {
      const __m256i age = _mm256_add_epi64(s, _mm256_and_si256(neg, vtc));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages + i), age);
    }
  }
  for (; i < n; ++i) {
    const std::int64_t s = rem + offsets[first + i];
    curs[i] = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(cycle - (s < 0 ? 1 : 0)) & mask);
    if (ages != nullptr)
      ages[i] = static_cast<std::uint64_t>(s < 0 ? s + tcycle : s);
  }
}

__attribute__((target("avx2"))) void stage_ramp_avx2(
    const std::int64_t* offsets, const std::uint32_t* gids, std::size_t n,
    std::int64_t cycle, std::int64_t rem0, std::uint64_t mask,
    std::uint32_t* curs) noexcept {
  // Precondition (checked by the caller): rem0 + n <= tcycle, so lane i has
  // rem0 + i in [0, tcycle) and s = rem0 + i + d in (-tcycle, tcycle).
  const __m256i vcyc = _mm256_set1_epi64x(cycle);
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ramp = _mm256_setr_epi64x(0, 1, 2, 3);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i idx = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(gids + i)));
    const __m256i off = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(offsets), idx, 8);
    const __m256i vrem = _mm256_add_epi64(
        _mm256_set1_epi64x(rem0 + static_cast<std::int64_t>(i)), ramp);
    const __m256i s = _mm256_add_epi64(vrem, off);
    const __m256i neg = _mm256_cmpgt_epi64(zero, s);
    const __m256i cur =
        _mm256_and_si256(_mm256_add_epi64(vcyc, neg), vmask);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(curs + i), pack_low32(cur));
  }
  for (; i < n; ++i) {
    const std::int64_t s = rem0 + static_cast<std::int64_t>(i) + offsets[gids[i]];
    curs[i] = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(cycle - (s < 0 ? 1 : 0)) & mask);
  }
}

__attribute__((target("avx2"))) void stage_rep_avx2(
    const std::int64_t* offsets, const std::uint32_t* gids, std::size_t nkeys,
    unsigned k, std::int64_t cycle, std::int64_t rem0, std::uint64_t mask,
    std::uint32_t* curs) noexcept {
  // Precondition (checked by the caller): rem0 + nkeys <= tcycle, so key b
  // runs at rem0 + b in [0, tcycle) and no lane wraps a cycle boundary.
  const __m256i vcyc = _mm256_set1_epi64x(cycle);
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i zero = _mm256_setzero_si256();
  for (std::size_t b = 0; b < nkeys; ++b) {
    const std::int64_t rem = rem0 + static_cast<std::int64_t>(b);
    const __m256i vrem = _mm256_set1_epi64x(rem);
    const std::uint32_t* g = gids + b * k;
    std::uint32_t* c = curs + b * k;
    unsigned h = 0;
    for (; h + 4 <= k; h += 4) {
      const __m256i idx = _mm256_cvtepu32_epi64(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(g + h)));
      const __m256i off = _mm256_i64gather_epi64(
          reinterpret_cast<const long long*>(offsets), idx, 8);
      const __m256i s = _mm256_add_epi64(vrem, off);
      const __m256i neg = _mm256_cmpgt_epi64(zero, s);
      const __m256i cur =
          _mm256_and_si256(_mm256_add_epi64(vcyc, neg), vmask);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + h), pack_low32(cur));
    }
    for (; h < k; ++h) {
      const std::int64_t s = rem + offsets[g[h]];
      c[h] = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(cycle - (s < 0 ? 1 : 0)) & mask);
    }
  }
}

#endif  // __x86_64__

}  // namespace

void GroupClock::stage_marks(const std::uint32_t* gids, std::size_t n,
                             TimeParts p, std::uint32_t* curs,
                             std::uint64_t* ages) const {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (simd::active_isa() == simd::Isa::kAvx2) {
    stage_gather_avx2(offsets_.data(), gids, n, p.cycle, p.rem,
                      static_cast<std::int64_t>(tcycle_), marks_.max_value(),
                      curs, ages);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    curs[i] = static_cast<std::uint32_t>(current_mark_at(p, gids[i]));
    if (ages != nullptr) ages[i] = age_at(p, gids[i]);
  }
}

void GroupClock::stage_marks_range(std::size_t first, std::size_t n,
                                   TimeParts p, std::uint32_t* curs,
                                   std::uint64_t* ages) const {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (simd::active_isa() == simd::Isa::kAvx2) {
    stage_range_avx2(offsets_.data(), first, n, p.cycle, p.rem,
                     static_cast<std::int64_t>(tcycle_), marks_.max_value(),
                     curs, ages);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    curs[i] = static_cast<std::uint32_t>(current_mark_at(p, first + i));
    if (ages != nullptr) ages[i] = age_at(p, first + i);
  }
}

void GroupClock::stage_marks_ramp(const std::uint32_t* gids, std::size_t n,
                                  TimeParts p0, std::uint32_t* curs) const {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (simd::active_isa() == simd::Isa::kAvx2) {
    stage_ramp_avx2(offsets_.data(), gids, n, p0.cycle, p0.rem,
                    marks_.max_value(), curs);
    return;
  }
#endif
  TimeParts p = p0;
  for (std::size_t i = 0; i < n; ++i) {
    curs[i] = static_cast<std::uint32_t>(current_mark_at(p, gids[i]));
    tick(p);
  }
}

void GroupClock::stage_marks_rep(const std::uint32_t* gids, std::size_t nkeys,
                                 unsigned k, TimeParts p0,
                                 std::uint32_t* curs) const {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (simd::active_isa() == simd::Isa::kAvx2) {
    stage_rep_avx2(offsets_.data(), gids, nkeys, k, p0.cycle, p0.rem,
                   marks_.max_value(), curs);
    return;
  }
#endif
  TimeParts p = p0;
  for (std::size_t b = 0; b < nkeys; ++b) {
    for (unsigned h = 0; h < k; ++h) {
      curs[b * k + h] = static_cast<std::uint32_t>(
          current_mark_at(p, gids[b * k + h]));
    }
    tick(p);
  }
}

void GroupClock::reset() {
  for (std::size_t g = 0; g < marks_.size(); ++g)
    marks_.set(g, current_mark(g, 0));
}

void GroupClock::save(BinaryWriter& out) const {
  out.tag("GCLK");
  out.u64(tcycle_);
  marks_.save(out);
}

GroupClock GroupClock::load(BinaryReader& in) {
  in.expect_tag("GCLK");
  std::uint64_t tcycle = in.u64();
  PackedArray marks = PackedArray::load(in);
  GroupClock clock(marks.size(), tcycle, marks.cell_bits());
  clock.marks_ = std::move(marks);
  return clock;
}

}  // namespace she
