#include "she/group_clock.hpp"

#include <stdexcept>

#include "common/int_math.hpp"
#include "obs/she_metrics.hpp"

namespace she {

GroupClock::GroupClock(std::size_t groups, std::uint64_t tcycle, unsigned mark_bits)
    : tcycle_(tcycle), offsets_(groups), marks_(groups, mark_bits) {
  if (groups == 0) throw std::invalid_argument("GroupClock: groups must be > 0");
  if (tcycle == 0) throw std::invalid_argument("GroupClock: tcycle must be > 0");
  // d_gid = -floor(Tcycle * gid / G); gid < G keeps the magnitude below
  // Tcycle.  Cached: recomputing costs a 64-bit division on every access.
  for (std::size_t gid = 0; gid < groups; ++gid)
    offsets_[gid] = -static_cast<std::int64_t>(tcycle * gid / groups);
  reset();
}

std::uint64_t GroupClock::current_mark(std::size_t gid, std::uint64_t t) const {
  std::int64_t shifted = static_cast<std::int64_t>(t) + offsets_[gid];
  std::int64_t cycle = floor_div(shifted, static_cast<std::int64_t>(tcycle_));
  // Power-of-two modulus: masking a two's-complement value equals the
  // floored modulo, so negative cycle indices (before a group's first
  // boundary) wrap correctly.
  return static_cast<std::uint64_t>(cycle) & marks_.max_value();
}

std::uint64_t GroupClock::age(std::size_t gid, std::uint64_t t) const {
  std::int64_t shifted = static_cast<std::int64_t>(t) + offset(gid);
  return static_cast<std::uint64_t>(
      floor_mod(shifted, static_cast<std::int64_t>(tcycle_)));
}

bool GroupClock::touch(std::size_t gid, std::uint64_t t) {
  std::uint64_t cur = current_mark(gid, t);
  std::uint64_t stored = marks_.get(gid);
  if (stored == cur) return false;
  marks_.set(gid, cur);
  if (obs::enabled()) {
    obs::SheMetrics& m = obs::she_metrics();
    m.groupclock_lazy_clean.inc();
    // Boundaries crossed since the last touch, modulo the mark space; with
    // b-bit marks a lag of exactly 2^b cycles is invisible (the aliasing
    // error of Sec. 5.1), so this undercounts precisely when that occurs.
    m.groupclock_mark_flips.inc((cur - stored) & marks_.max_value());
  }
  return true;
}

void GroupClock::reset() {
  for (std::size_t g = 0; g < marks_.size(); ++g)
    marks_.set(g, current_mark(g, 0));
}

void GroupClock::save(BinaryWriter& out) const {
  out.tag("GCLK");
  out.u64(tcycle_);
  marks_.save(out);
}

GroupClock GroupClock::load(BinaryReader& in) {
  in.expect_tag("GCLK");
  std::uint64_t tcycle = in.u64();
  PackedArray marks = PackedArray::load(in);
  GroupClock clock(marks.size(), tcycle, marks.cell_bits());
  clock.marks_ = std::move(marks);
  return clock;
}

}  // namespace she
