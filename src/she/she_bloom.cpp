#include "she/she_bloom.hpp"

#include <stdexcept>

#include "obs/she_metrics.hpp"
#include "she/batch_simd.hpp"

namespace she {

SheBloomFilter::SheBloomFilter(const SheConfig& cfg, unsigned hashes)
    : cfg_(cfg),
      hashes_(hashes),
      clock_(cfg.groups(), cfg.tcycle(), cfg.mark_bits),
      bits_(cfg.cells) {
  cfg_.validate();
  if (hashes == 0) throw std::invalid_argument("SheBloomFilter: hashes must be > 0");
}

void SheBloomFilter::insert(std::uint64_t key) { insert_at(key, time_ + 1); }

void SheBloomFilter::advance_to(std::uint64_t t) {
  if (t < time_)
    throw std::invalid_argument("SheBloomFilter: time must not move backwards");
  time_ = t;
}

void SheBloomFilter::insert_at(std::uint64_t key, std::uint64_t t) {
  advance_to(t);
  for (unsigned i = 0; i < hashes_; ++i) {
    std::size_t pos = position(key, i);
    std::size_t gid = pos / cfg_.group_cells;
    if (clock_.touch(gid, time_)) {
      std::size_t first = gid * cfg_.group_cells;
      std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
      bits_.clear_range(first, count);
    }
    bits_.set(pos);
  }
  if (obs::enabled()) obs::she_metrics().hash_calls.inc(hashes_);
}

void SheBloomFilter::insert_batch(std::span<const std::uint64_t> keys) {
  insert_many(keys, nullptr);
  // One increment for the whole batch: the tail runs through the same
  // staged pipeline, so accounting is uniform (k hashes per key, exactly).
  if (obs::enabled())
    obs::she_metrics().hash_calls.inc(
        static_cast<std::uint64_t>(keys.size()) * hashes_);
}

void SheBloomFilter::insert_at_batch(std::span<const std::uint64_t> keys,
                                     std::span<const std::uint64_t> times) {
  batch::validate_insert_times(keys, times, time_, "SheBloomFilter");
  insert_many(keys, times.data());
  if (obs::enabled())
    obs::she_metrics().hash_calls.inc(
        static_cast<std::uint64_t>(keys.size()) * hashes_);
}

void SheBloomFilter::insert_many(std::span<const std::uint64_t> keys,
                                 const std::uint64_t* times) {
  // The fused stage buffers hold one block of n * k slots; block_keys()
  // bounds that by kSlotBudget whenever k itself fits the budget.
  if (batch::simd_eligible(cfg_.cells) && hashes_ <= batch::kSlotBudget) {
    insert_many_simd(keys, times);
    return;
  }
  // Scalar reference path (also the SHE_FORCE_SCALAR path).
  // Cache-resident arrays are not worth prefetching (batch.hpp).
  const bool warm_bits = bits_.memory_bytes() >= batch::kPrefetchFootprint;
  const bool warm_marks = clock_.memory_bytes() >= batch::kPrefetchFootprint;
  std::size_t idx = 0;
  batch::pipelined(
      keys, hashes_, scratch_,
      [this](std::uint64_t key, unsigned h) {
        return batch::Slot{position(key, h), 0};
      },
      [this, warm_bits, warm_marks](const batch::Slot& s) {
        if (warm_bits) bits_.prefetch(s.pos, true);
        if (warm_marks) clock_.prefetch(s.pos / cfg_.group_cells, true);
      },
      [this, times, &idx] {
        if (times != nullptr)
          time_ = times[idx++];
        else
          ++time_;
      },
      [this](std::uint64_t, unsigned, const batch::Slot& s) {
        std::size_t gid = s.pos / cfg_.group_cells;
        if (clock_.touch(gid, time_)) {
          std::size_t first = gid * cfg_.group_cells;
          std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
          bits_.clear_range(first, count);
        }
        bits_.set(s.pos);
      });
}

void SheBloomFilter::insert_many_simd(std::span<const std::uint64_t> keys,
                                      const std::uint64_t* times) {
  const bool warm_bits = bits_.memory_bytes() >= batch::kPrefetchFootprint;
  const bool warm_marks = clock_.memory_bytes() >= batch::kPrefetchFootprint;
  const FastDiv32 mod_cells(static_cast<std::uint32_t>(cfg_.cells));
  const FastDiv32 div_group(static_cast<std::uint32_t>(cfg_.group_cells));
  const batch::MarkStager stager(clock_, time_, times);
  std::size_t idx = 0;
  batch::pipelined_blocks(
      keys, hashes_, scratch_,
      // Stage 1, fused: one hash sweep, one position/group reduction and one
      // mark staging call over the whole key-major block (m = n * k slots),
      // then a single sequential write pass.  aux = cur << 32 | gid.
      [&](std::size_t begin, std::size_t n, batch::Slot* out) {
        std::uint32_t h32[batch::kSlotBudget];
        std::uint32_t pos[batch::kSlotBudget];
        std::uint32_t gid[batch::kSlotBudget];
        std::uint32_t cur[batch::kSlotBudget];
        const std::size_t m = n * hashes_;
        simd::bobhash32_keys_multi(keys.data() + begin, n, cfg_.seed, hashes_,
                                   h32);
        simd::positions_groups(h32, m, mod_cells, div_group, pos, gid);
        stager.stage_rep(begin, n, hashes_, gid, cur);
        for (std::size_t s = 0; s < m; ++s) {
          out[s].pos = pos[s];
          out[s].aux = (std::uint64_t{cur[s]} << 32) | gid[s];
          if (warm_bits) bits_.prefetch(pos[s], true);
          if (warm_marks) clock_.prefetch(gid[s], true);
        }
      },
      [this, times, &idx] {
        if (times != nullptr)
          time_ = times[idx++];
        else
          ++time_;
      },
      // Stage 2: the scalar CheckGroup + set, against the staged mark.
      [this](std::uint64_t, unsigned, const batch::Slot& s) {
        const std::size_t gid = s.aux & 0xFFFFFFFFu;
        if (clock_.touch_precomputed(gid, s.aux >> 32)) {
          std::size_t first = gid * cfg_.group_cells;
          std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
          bits_.clear_range(first, count);
        }
        bits_.set(s.pos);
      });
}

void SheBloomFilter::contains_batch(std::span<const std::uint64_t> keys,
                                    std::span<std::uint8_t> out,
                                    std::uint64_t window) const {
  if (window == 0 || window > cfg_.window)
    throw std::invalid_argument("SheBloomFilter: query window must be in [1, N]");
  if (out.size() < keys.size())
    throw std::invalid_argument("SheBloomFilter: contains_batch output too small");
  const bool track = obs::enabled();
  // Local scratch keeps this const path thread-safe on shared readers; one
  // allocation per batch call is noise against the per-key work.
  std::vector<batch::Slot> scratch;
  const bool warm_bits = bits_.memory_bytes() >= batch::kPrefetchFootprint;
  const bool warm_marks = clock_.memory_bytes() >= batch::kPrefetchFootprint;
  if (batch::simd_eligible(cfg_.cells) && hashes_ <= batch::kSlotBudget) {
    // SIMD stage 1: hash sweeps + staged ages and staleness at the (fixed)
    // query time; aux = age << 1 | stale.  Evaluation below replays the
    // exact scalar probe logic against the staged values.
    const FastDiv32 mod_cells(static_cast<std::uint32_t>(cfg_.cells));
    const FastDiv32 div_group(static_cast<std::uint32_t>(cfg_.group_cells));
    const GroupClock::TimeParts now = clock_.split(time_);
    batch::pipelined_query_blocks(
        keys, hashes_, scratch,
        [&](std::size_t begin, std::size_t n, batch::Slot* slots) {
          std::uint32_t h32[batch::kSlotBudget];
          std::uint32_t pos[batch::kSlotBudget];
          std::uint32_t gid[batch::kSlotBudget];
          std::uint32_t cur[batch::kSlotBudget];
          std::uint64_t age[batch::kSlotBudget];
          const std::size_t m = n * hashes_;
          // The query time is fixed, so the key-major slots stage flat.
          simd::bobhash32_keys_multi(keys.data() + begin, n, cfg_.seed,
                                     hashes_, h32);
          simd::positions_groups(h32, m, mod_cells, div_group, pos, gid);
          clock_.stage_marks(gid, m, now, cur, age);
          for (std::size_t s = 0; s < m; ++s) {
            const std::uint64_t stale =
                clock_.stored_mark(gid[s]) != cur[s] ? 1 : 0;
            slots[s].pos = pos[s];
            slots[s].aux = (age[s] << 1) | stale;
            if (warm_bits) bits_.prefetch(pos[s], false);
            if (warm_marks) clock_.prefetch(gid[s], false);
          }
        },
        [&](std::size_t i, const batch::Slot* slots) {
          obs::AgeClassCounts cls;
          bool present = true;
          for (unsigned h = 0; h < hashes_; ++h) {
            const std::uint64_t age = slots[h].aux >> 1;
            if (track) cls.add(age, window);
            if (age < window) continue;
            const bool stale = (slots[h].aux & 1) != 0;
            if (!(stale ? false : bits_.test(slots[h].pos))) {
              present = false;
              break;
            }
          }
          out[i] = present ? 1 : 0;
          if (track) cls.commit(true);
        });
    if (track)
      obs::she_metrics().hash_calls.inc(
          static_cast<std::uint64_t>(keys.size()) * hashes_);
    return;
  }
  batch::pipelined_query(
      keys, hashes_, scratch,
      [this](std::uint64_t key, unsigned h) {
        return batch::Slot{position(key, h), 0};
      },
      [this, warm_bits, warm_marks](const batch::Slot& s) {
        if (warm_bits) bits_.prefetch(s.pos, false);
        if (warm_marks) clock_.prefetch(s.pos / cfg_.group_cells, false);
      },
      [&](std::size_t i, const batch::Slot* slots) {
        // Same probe-by-probe logic as scalar contains(); positions staged.
        obs::AgeClassCounts cls;
        bool present = true;
        for (unsigned h = 0; h < hashes_; ++h) {
          std::size_t pos = slots[h].pos;
          std::size_t gid = pos / cfg_.group_cells;
          std::uint64_t age = clock_.age(gid, time_);
          if (track) cls.add(age, window);
          if (age < window) continue;
          if (!(clock_.stale(gid, time_) ? false : bits_.test(pos))) {
            present = false;
            break;
          }
        }
        out[i] = present ? 1 : 0;
        if (track) cls.commit(true);
      });
  // All probe hashes are staged up front, so the batch path charges exactly
  // k hash calls per key regardless of early exits.
  if (track)
    obs::she_metrics().hash_calls.inc(
        static_cast<std::uint64_t>(keys.size()) * hashes_);
}

bool SheBloomFilter::contains(std::uint64_t key, std::uint64_t window) const {
  if (window == 0 || window > cfg_.window)
    throw std::invalid_argument("SheBloomFilter: query window must be in [1, N]");
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  for (unsigned i = 0; i < hashes_; ++i) {
    std::size_t pos = position(key, i);
    std::size_t gid = pos / cfg_.group_cells;
    std::uint64_t age = clock_.age(gid, time_);
    if (track) cls.add(age, window);
    if (age < window) continue;  // young cell: ignore (no false negatives)
    bool bit = clock_.stale(gid, time_) ? false : bits_.test(pos);
    if (!bit) {  // a zero mature bit proves absence
      if (track) {
        cls.commit(true);
        obs::she_metrics().hash_calls.inc(i + 1);
      }
      return false;
    }
  }
  // All probes were young or 1: no evidence of absence.
  if (track) {
    cls.commit(true);
    obs::she_metrics().hash_calls.inc(hashes_);
  }
  return true;
}

void SheBloomFilter::save(BinaryWriter& out) const {
  out.tag("SHBF");
  cfg_.save(out);
  out.u32(hashes_);
  out.u64(time_);
  clock_.save(out);
  bits_.save(out);
}

SheBloomFilter SheBloomFilter::load(BinaryReader& in) {
  in.expect_tag("SHBF");
  SheConfig cfg = SheConfig::load(in);
  unsigned hashes = in.u32();
  SheBloomFilter bf(cfg, hashes);
  bf.time_ = in.u64();
  bf.clock_ = GroupClock::load(in);
  bf.bits_ = BitArray::load(in);
  if (bf.clock_.groups() != cfg.groups() || bf.bits_.size() != cfg.cells)
    throw std::runtime_error("SheBloomFilter::load: shape mismatch");
  return bf;
}

void SheBloomFilter::clear() {
  bits_.clear();
  clock_.reset();
  time_ = 0;
}

}  // namespace she
