#include "she/she_bloom.hpp"

#include <stdexcept>

#include "obs/she_metrics.hpp"

namespace she {

SheBloomFilter::SheBloomFilter(const SheConfig& cfg, unsigned hashes)
    : cfg_(cfg),
      hashes_(hashes),
      clock_(cfg.groups(), cfg.tcycle(), cfg.mark_bits),
      bits_(cfg.cells) {
  cfg_.validate();
  if (hashes == 0) throw std::invalid_argument("SheBloomFilter: hashes must be > 0");
}

void SheBloomFilter::insert(std::uint64_t key) { insert_at(key, time_ + 1); }

void SheBloomFilter::advance_to(std::uint64_t t) {
  if (t < time_)
    throw std::invalid_argument("SheBloomFilter: time must not move backwards");
  time_ = t;
}

void SheBloomFilter::insert_at(std::uint64_t key, std::uint64_t t) {
  advance_to(t);
  for (unsigned i = 0; i < hashes_; ++i) {
    std::size_t pos = position(key, i);
    std::size_t gid = pos / cfg_.group_cells;
    if (clock_.touch(gid, time_)) {
      std::size_t first = gid * cfg_.group_cells;
      std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
      bits_.clear_range(first, count);
    }
    bits_.set(pos);
  }
  if (obs::enabled()) obs::she_metrics().hash_calls.inc(hashes_);
}

void SheBloomFilter::insert_batch(std::span<const std::uint64_t> keys) {
  // Cache-resident arrays are not worth prefetching (batch.hpp).
  const bool warm_bits = bits_.memory_bytes() >= batch::kPrefetchFootprint;
  const bool warm_marks = clock_.memory_bytes() >= batch::kPrefetchFootprint;
  batch::pipelined(
      keys, hashes_, scratch_,
      [this](std::uint64_t key, unsigned h) {
        return batch::Slot{position(key, h), 0};
      },
      [this, warm_bits, warm_marks](const batch::Slot& s) {
        if (warm_bits) bits_.prefetch(s.pos, true);
        if (warm_marks) clock_.prefetch(s.pos / cfg_.group_cells, true);
      },
      [this] { ++time_; },
      [this](std::uint64_t, unsigned, const batch::Slot& s) {
        std::size_t gid = s.pos / cfg_.group_cells;
        if (clock_.touch(gid, time_)) {
          std::size_t first = gid * cfg_.group_cells;
          std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
          bits_.clear_range(first, count);
        }
        bits_.set(s.pos);
      });
  // One increment for the whole batch: the tail runs through the same
  // staged pipeline, so accounting is uniform (k hashes per key, exactly).
  if (obs::enabled())
    obs::she_metrics().hash_calls.inc(
        static_cast<std::uint64_t>(keys.size()) * hashes_);
}

void SheBloomFilter::contains_batch(std::span<const std::uint64_t> keys,
                                    std::span<std::uint8_t> out,
                                    std::uint64_t window) const {
  if (window == 0 || window > cfg_.window)
    throw std::invalid_argument("SheBloomFilter: query window must be in [1, N]");
  if (out.size() < keys.size())
    throw std::invalid_argument("SheBloomFilter: contains_batch output too small");
  const bool track = obs::enabled();
  // Local scratch keeps this const path thread-safe on shared readers; one
  // allocation per batch call is noise against the per-key work.
  std::vector<batch::Slot> scratch;
  const bool warm_bits = bits_.memory_bytes() >= batch::kPrefetchFootprint;
  const bool warm_marks = clock_.memory_bytes() >= batch::kPrefetchFootprint;
  batch::pipelined_query(
      keys, hashes_, scratch,
      [this](std::uint64_t key, unsigned h) {
        return batch::Slot{position(key, h), 0};
      },
      [this, warm_bits, warm_marks](const batch::Slot& s) {
        if (warm_bits) bits_.prefetch(s.pos, false);
        if (warm_marks) clock_.prefetch(s.pos / cfg_.group_cells, false);
      },
      [&](std::size_t i, const batch::Slot* slots) {
        // Same probe-by-probe logic as scalar contains(); positions staged.
        obs::AgeClassCounts cls;
        bool present = true;
        for (unsigned h = 0; h < hashes_; ++h) {
          std::size_t pos = slots[h].pos;
          std::size_t gid = pos / cfg_.group_cells;
          std::uint64_t age = clock_.age(gid, time_);
          if (track) cls.add(age, window);
          if (age < window) continue;
          if (!(clock_.stale(gid, time_) ? false : bits_.test(pos))) {
            present = false;
            break;
          }
        }
        out[i] = present ? 1 : 0;
        if (track) cls.commit(true);
      });
  // All probe hashes are staged up front, so the batch path charges exactly
  // k hash calls per key regardless of early exits.
  if (track)
    obs::she_metrics().hash_calls.inc(
        static_cast<std::uint64_t>(keys.size()) * hashes_);
}

bool SheBloomFilter::contains(std::uint64_t key, std::uint64_t window) const {
  if (window == 0 || window > cfg_.window)
    throw std::invalid_argument("SheBloomFilter: query window must be in [1, N]");
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  for (unsigned i = 0; i < hashes_; ++i) {
    std::size_t pos = position(key, i);
    std::size_t gid = pos / cfg_.group_cells;
    std::uint64_t age = clock_.age(gid, time_);
    if (track) cls.add(age, window);
    if (age < window) continue;  // young cell: ignore (no false negatives)
    bool bit = clock_.stale(gid, time_) ? false : bits_.test(pos);
    if (!bit) {  // a zero mature bit proves absence
      if (track) {
        cls.commit(true);
        obs::she_metrics().hash_calls.inc(i + 1);
      }
      return false;
    }
  }
  // All probes were young or 1: no evidence of absence.
  if (track) {
    cls.commit(true);
    obs::she_metrics().hash_calls.inc(hashes_);
  }
  return true;
}

void SheBloomFilter::save(BinaryWriter& out) const {
  out.tag("SHBF");
  cfg_.save(out);
  out.u32(hashes_);
  out.u64(time_);
  clock_.save(out);
  bits_.save(out);
}

SheBloomFilter SheBloomFilter::load(BinaryReader& in) {
  in.expect_tag("SHBF");
  SheConfig cfg = SheConfig::load(in);
  unsigned hashes = in.u32();
  SheBloomFilter bf(cfg, hashes);
  bf.time_ = in.u64();
  bf.clock_ = GroupClock::load(in);
  bf.bits_ = BitArray::load(in);
  if (bf.clock_.groups() != cfg.groups() || bf.bits_.size() != cfg.cells)
    throw std::runtime_error("SheBloomFilter::load: shape mismatch");
  return bf;
}

void SheBloomFilter::clear() {
  bits_.clear();
  clock_.reset();
  time_ = 0;
}

}  // namespace she
