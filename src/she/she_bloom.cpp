#include "she/she_bloom.hpp"

#include <stdexcept>

#include "obs/she_metrics.hpp"

namespace she {

SheBloomFilter::SheBloomFilter(const SheConfig& cfg, unsigned hashes)
    : cfg_(cfg),
      hashes_(hashes),
      clock_(cfg.groups(), cfg.tcycle(), cfg.mark_bits),
      bits_(cfg.cells) {
  cfg_.validate();
  if (hashes == 0) throw std::invalid_argument("SheBloomFilter: hashes must be > 0");
}

void SheBloomFilter::insert(std::uint64_t key) { insert_at(key, time_ + 1); }

void SheBloomFilter::advance_to(std::uint64_t t) {
  if (t < time_)
    throw std::invalid_argument("SheBloomFilter: time must not move backwards");
  time_ = t;
}

void SheBloomFilter::insert_at(std::uint64_t key, std::uint64_t t) {
  advance_to(t);
  for (unsigned i = 0; i < hashes_; ++i) {
    std::size_t pos = position(key, i);
    std::size_t gid = pos / cfg_.group_cells;
    if (clock_.touch(gid, time_)) {
      std::size_t first = gid * cfg_.group_cells;
      std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
      bits_.clear_range(first, count);
    }
    bits_.set(pos);
  }
  if (obs::enabled()) obs::she_metrics().hash_calls.inc(hashes_);
}

void SheBloomFilter::insert_batch(std::span<const std::uint64_t> keys) {
  // Software pipeline: hash a block of keys once into a position buffer,
  // issue prefetches for every touched cache line, then apply the updates
  // from the buffer.  The hash latency of key i+1 and the memory latency of
  // key i overlap, which is where the win over scalar insert() comes from
  // once the bit array outgrows the cache.
  constexpr std::size_t kBlock = 16;
  positions_.resize(kBlock * hashes_);
  std::size_t i = 0;
  for (; i + kBlock <= keys.size(); i += kBlock) {
    std::size_t* out = positions_.data();
    for (std::size_t b = 0; b < kBlock; ++b) {
      for (unsigned h = 0; h < hashes_; ++h) {
        std::size_t pos = position(keys[i + b], h);
        *out++ = pos;
        bits_.prefetch(pos);
      }
    }
    const std::size_t* in = positions_.data();
    for (std::size_t b = 0; b < kBlock; ++b) {
      ++time_;
      for (unsigned h = 0; h < hashes_; ++h) {
        std::size_t pos = *in++;
        std::size_t gid = pos / cfg_.group_cells;
        if (clock_.touch(gid, time_)) {
          std::size_t first = gid * cfg_.group_cells;
          std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
          bits_.clear_range(first, count);
        }
        bits_.set(pos);
      }
    }
  }
  if (obs::enabled() && i > 0)
    obs::she_metrics().hash_calls.inc(static_cast<std::uint64_t>(i) * hashes_);
  for (; i < keys.size(); ++i) insert(keys[i]);
}

bool SheBloomFilter::contains(std::uint64_t key, std::uint64_t window) const {
  if (window == 0 || window > cfg_.window)
    throw std::invalid_argument("SheBloomFilter: query window must be in [1, N]");
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  for (unsigned i = 0; i < hashes_; ++i) {
    std::size_t pos = position(key, i);
    std::size_t gid = pos / cfg_.group_cells;
    std::uint64_t age = clock_.age(gid, time_);
    if (track) cls.add(age, window);
    if (age < window) continue;  // young cell: ignore (no false negatives)
    bool bit = clock_.stale(gid, time_) ? false : bits_.test(pos);
    if (!bit) {  // a zero mature bit proves absence
      if (track) {
        cls.commit(true);
        obs::she_metrics().hash_calls.inc(i + 1);
      }
      return false;
    }
  }
  // All probes were young or 1: no evidence of absence.
  if (track) {
    cls.commit(true);
    obs::she_metrics().hash_calls.inc(hashes_);
  }
  return true;
}

void SheBloomFilter::save(BinaryWriter& out) const {
  out.tag("SHBF");
  cfg_.save(out);
  out.u32(hashes_);
  out.u64(time_);
  clock_.save(out);
  bits_.save(out);
}

SheBloomFilter SheBloomFilter::load(BinaryReader& in) {
  in.expect_tag("SHBF");
  SheConfig cfg = SheConfig::load(in);
  unsigned hashes = in.u32();
  SheBloomFilter bf(cfg, hashes);
  bf.time_ = in.u64();
  bf.clock_ = GroupClock::load(in);
  bf.bits_ = BitArray::load(in);
  if (bf.clock_.groups() != cfg.groups() || bf.bits_.size() != cfg.cells)
    throw std::runtime_error("SheBloomFilter::load: shape mismatch");
  return bf;
}

void SheBloomFilter::clear() {
  bits_.clear();
  clock_.reset();
  time_ = 0;
}

}  // namespace she
