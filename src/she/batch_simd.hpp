// Shared pieces of the SIMD stage-1 front-end (see docs/INTERNALS.md §13).
//
// Each estimator keeps two insert-batch bodies:
//
//   * the scalar reference path — the PR-3 pipelined() loops, unchanged,
//     taken under SHE_FORCE_SCALAR or on hardware without vector dispatch;
//   * the SIMD path — pipelined_blocks() with a lane-parallel stage 1 that
//     hashes the whole block per probe (simd::bobhash32_keys), reduces
//     positions with division-free FastDiv32, and precomputes GroupClock
//     marks (stage_marks_ramp) so stage 2 never divides.
//
// Stage 2 is the same scalar CheckGroup + F loop in both paths, so the two
// are bit-identical; tests/test_simd.cpp drives them differentially.
//
// This header carries the parts every estimator shares: eligibility,
// timestamp validation for the batched insert_at, and the per-block mark
// stager that handles implicit (+1/key) and explicit timestamps.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "common/int_math.hpp"
#include "common/simd.hpp"
#include "common/simd_hash.hpp"
#include "she/batch.hpp"
#include "she/group_clock.hpp"

namespace she::batch {

/// True when this sketch can take the SIMD stage-1 path: a vector backend is
/// dispatched and positions fit the kernels' 32-bit lanes.  (No production
/// geometry exceeds 2^32 cells; anything that does just keeps the scalar
/// batch path.)
[[nodiscard]] inline bool simd_eligible(std::size_t cells) {
  return simd::active_isa() != simd::Isa::kScalar &&
         cells <= std::size_t{0xFFFFFFFFu};
}

/// insert_at_batch argument validation, shared by all five estimators:
/// per-key timestamps must pair 1:1 with keys and never move backwards
/// (same contract, and same message, as scalar insert_at).  Validated up
/// front so the batch pipeline can assign times without re-checking.
inline void validate_insert_times(std::span<const std::uint64_t> keys,
                                  std::span<const std::uint64_t> times,
                                  std::uint64_t now, const char* who) {
  if (times.size() != keys.size())
    throw std::invalid_argument(std::string(who) +
                                ": insert_at_batch keys/times size mismatch");
  std::uint64_t prev = now;
  for (std::uint64_t t : times) {
    if (t < prev)
      throw std::invalid_argument(std::string(who) +
                                  ": time must not move backwards");
    prev = t;
  }
}

/// Stages current GroupClock marks for one block of an insert batch.
/// Key b of the batch runs at times[b] when explicit timestamps were given,
/// or t0 + b + 1 for plain insert_batch (t0 = stream time at batch entry).
///
/// The common shape — implicit times, no cycle boundary inside the block —
/// takes the vectorized ramp kernel; blocks that straddle a boundary (tiny
/// test windows) or carry explicit timestamps stage per key, still
/// division-free via TimeParts.
class MarkStager {
 public:
  MarkStager(const GroupClock& clock, std::uint64_t t0,
             const std::uint64_t* times)
      : clock_(clock), t0_(t0), times_(times) {}

  void stage(std::size_t begin, std::size_t n, const std::uint32_t* gids,
             std::uint32_t* curs) const {
    if (times_ == nullptr) {
      GroupClock::TimeParts p = clock_.split(t0_ + begin + 1);
      if (p.rem + static_cast<std::int64_t>(n) <=
          static_cast<std::int64_t>(clock_.tcycle())) {
        clock_.stage_marks_ramp(gids, n, p, curs);
        return;
      }
      for (std::size_t b = 0; b < n; ++b) {
        curs[b] =
            static_cast<std::uint32_t>(clock_.current_mark_at(p, gids[b]));
        clock_.tick(p);
      }
      return;
    }
    GroupClock::TimeParts p = clock_.split(times_[begin]);
    for (std::size_t b = 0; b < n; ++b) {
      if (b > 0) clock_.advance(p, times_[begin + b - 1], times_[begin + b]);
      curs[b] = static_cast<std::uint32_t>(clock_.current_mark_at(p, gids[b]));
    }
  }

  /// Key-major, k probes per key: curs[b * k + h] = current mark of
  /// gids[b * k + h] at key b's time.  The fused BF/CM stage calls this once
  /// per block instead of once per probe.
  void stage_rep(std::size_t begin, std::size_t n, unsigned k,
                 const std::uint32_t* gids, std::uint32_t* curs) const {
    if (times_ == nullptr) {
      GroupClock::TimeParts p = clock_.split(t0_ + begin + 1);
      if (p.rem + static_cast<std::int64_t>(n) <=
          static_cast<std::int64_t>(clock_.tcycle())) {
        clock_.stage_marks_rep(gids, n, k, p, curs);
        return;
      }
      for (std::size_t b = 0; b < n; ++b) {
        for (unsigned h = 0; h < k; ++h) {
          curs[b * k + h] = static_cast<std::uint32_t>(
              clock_.current_mark_at(p, gids[b * k + h]));
        }
        clock_.tick(p);
      }
      return;
    }
    GroupClock::TimeParts p = clock_.split(times_[begin]);
    for (std::size_t b = 0; b < n; ++b) {
      if (b > 0) clock_.advance(p, times_[begin + b - 1], times_[begin + b]);
      for (unsigned h = 0; h < k; ++h) {
        curs[b * k + h] = static_cast<std::uint32_t>(
            clock_.current_mark_at(p, gids[b * k + h]));
      }
    }
  }

  /// Time of key `index` of the batch (used by the all-slots MinHash stage,
  /// which re-splits per key because every slot shares that key's time).
  [[nodiscard]] std::uint64_t time_of(std::size_t index) const {
    return times_ != nullptr ? times_[index] : t0_ + index + 1;
  }

 private:
  const GroupClock& clock_;
  std::uint64_t t0_;
  const std::uint64_t* times_;
};

}  // namespace she::batch
