#include "she/she_bitmap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/she_metrics.hpp"
#include "sketch/bitmap.hpp"

namespace she {

SheBitmap::SheBitmap(const SheConfig& cfg)
    : cfg_(cfg), clock_(cfg.groups(), cfg.tcycle(), cfg.mark_bits), bits_(cfg.cells) {
  cfg_.validate();
}

void SheBitmap::insert(std::uint64_t key) { insert_at(key, time_ + 1); }

void SheBitmap::advance_to(std::uint64_t t) {
  if (t < time_)
    throw std::invalid_argument("SheBitmap: time must not move backwards");
  time_ = t;
}

void SheBitmap::insert_at(std::uint64_t key, std::uint64_t t) {
  advance_to(t);
  if (obs::enabled()) obs::she_metrics().hash_calls.inc();
  std::size_t pos = BobHash32(cfg_.seed)(key) % cfg_.cells;
  std::size_t gid = pos / cfg_.group_cells;
  if (clock_.touch(gid, time_)) {
    std::size_t first = gid * cfg_.group_cells;
    bits_.clear_range(first, std::min(cfg_.group_cells, cfg_.cells - first));
  }
  bits_.set(pos);
}

bool SheBitmap::legal_age(std::uint64_t age) const {
  auto lower = static_cast<std::uint64_t>(cfg_.beta * static_cast<double>(cfg_.window));
  return age >= lower;
}

std::size_t SheBitmap::legal_groups() const {
  std::size_t legal = 0;
  for (std::size_t g = 0; g < clock_.groups(); ++g)
    if (legal_age(clock_.age(g, time_))) ++legal;
  return legal;
}

double SheBitmap::cardinality() const {
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  std::size_t zeros = 0;
  std::size_t observed = 0;
  for (std::size_t g = 0; g < clock_.groups(); ++g) {
    std::uint64_t age = clock_.age(g, time_);
    if (track) cls.add(age, cfg_.window);
    if (!legal_age(age)) continue;
    std::size_t first = g * cfg_.group_cells;
    std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
    observed += count;
    zeros += clock_.stale(g, time_) ? count : bits_.zeros_range(first, count);
  }
  cls.commit(track);
  return fixed::linear_counting(zeros, observed, static_cast<double>(cfg_.cells));
}

double SheBitmap::cardinality(std::uint64_t window) const {
  if (window == 0 || window > cfg_.window)
    throw std::invalid_argument("SheBitmap: query window must be in [1, N]");
  auto lower = static_cast<std::uint64_t>(cfg_.beta * static_cast<double>(window));
  auto upper = static_cast<std::uint64_t>((2.0 - cfg_.beta) * static_cast<double>(window));
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  std::size_t zeros = 0;
  std::size_t observed = 0;
  for (std::size_t g = 0; g < clock_.groups(); ++g) {
    std::uint64_t age = clock_.age(g, time_);
    if (track) cls.add(age, window);
    if (age < lower || age >= upper) continue;
    std::size_t first = g * cfg_.group_cells;
    std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
    observed += count;
    zeros += clock_.stale(g, time_) ? count : bits_.zeros_range(first, count);
  }
  cls.commit(track);
  if (observed == 0) return 0.0;  // no group's age matches this sub-window yet
  return fixed::linear_counting(zeros, observed, static_cast<double>(cfg_.cells));
}

void SheBitmap::save(BinaryWriter& out) const {
  out.tag("SHBM");
  cfg_.save(out);
  out.u64(time_);
  clock_.save(out);
  bits_.save(out);
}

SheBitmap SheBitmap::load(BinaryReader& in) {
  in.expect_tag("SHBM");
  SheConfig cfg = SheConfig::load(in);
  SheBitmap bm(cfg);
  bm.time_ = in.u64();
  bm.clock_ = GroupClock::load(in);
  bm.bits_ = BitArray::load(in);
  if (bm.clock_.groups() != cfg.groups() || bm.bits_.size() != cfg.cells)
    throw std::runtime_error("SheBitmap::load: shape mismatch");
  return bm;
}

void SheBitmap::clear() {
  bits_.clear();
  clock_.reset();
  time_ = 0;
}

}  // namespace she
