#include "she/she_bitmap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/she_metrics.hpp"
#include "she/batch_simd.hpp"
#include "sketch/bitmap.hpp"

namespace she {

SheBitmap::SheBitmap(const SheConfig& cfg)
    : cfg_(cfg), clock_(cfg.groups(), cfg.tcycle(), cfg.mark_bits), bits_(cfg.cells) {
  cfg_.validate();
}

void SheBitmap::insert(std::uint64_t key) { insert_at(key, time_ + 1); }

void SheBitmap::advance_to(std::uint64_t t) {
  if (t < time_)
    throw std::invalid_argument("SheBitmap: time must not move backwards");
  time_ = t;
}

void SheBitmap::insert_at(std::uint64_t key, std::uint64_t t) {
  advance_to(t);
  if (obs::enabled()) obs::she_metrics().hash_calls.inc();
  std::size_t pos = BobHash32(cfg_.seed)(key) % cfg_.cells;
  std::size_t gid = pos / cfg_.group_cells;
  if (clock_.touch(gid, time_)) {
    std::size_t first = gid * cfg_.group_cells;
    bits_.clear_range(first, std::min(cfg_.group_cells, cfg_.cells - first));
  }
  bits_.set(pos);
}

void SheBitmap::insert_batch(std::span<const std::uint64_t> keys) {
  insert_many(keys, nullptr);
}

void SheBitmap::insert_at_batch(std::span<const std::uint64_t> keys,
                                std::span<const std::uint64_t> times) {
  batch::validate_insert_times(keys, times, time_, "SheBitmap");
  insert_many(keys, times.data());
}

void SheBitmap::insert_many(std::span<const std::uint64_t> keys,
                            const std::uint64_t* times) {
  if (batch::simd_eligible(cfg_.cells)) {
    insert_many_simd(keys, times);
    return;
  }
  // Scalar reference path (also the SHE_FORCE_SCALAR path).
  // Cache-resident arrays are not worth prefetching (batch.hpp).
  const bool warm_bits = bits_.memory_bytes() >= batch::kPrefetchFootprint;
  const bool warm_marks = clock_.memory_bytes() >= batch::kPrefetchFootprint;
  std::size_t idx = 0;
  batch::pipelined(
      keys, 1, scratch_,
      [this](std::uint64_t key, unsigned) {
        return batch::Slot{BobHash32(cfg_.seed)(key) % cfg_.cells, 0};
      },
      [this, warm_bits, warm_marks](const batch::Slot& s) {
        if (warm_bits) bits_.prefetch(s.pos, true);
        if (warm_marks) clock_.prefetch(s.pos / cfg_.group_cells, true);
      },
      [this, times, &idx] {
        if (times != nullptr)
          time_ = times[idx++];
        else
          ++time_;
        if (obs::enabled()) obs::she_metrics().hash_calls.inc();
      },
      [this](std::uint64_t, unsigned, const batch::Slot& s) {
        std::size_t gid = s.pos / cfg_.group_cells;
        if (clock_.touch(gid, time_)) {
          std::size_t first = gid * cfg_.group_cells;
          bits_.clear_range(first, std::min(cfg_.group_cells, cfg_.cells - first));
        }
        bits_.set(s.pos);
      });
}

void SheBitmap::insert_many_simd(std::span<const std::uint64_t> keys,
                                 const std::uint64_t* times) {
  const bool warm_bits = bits_.memory_bytes() >= batch::kPrefetchFootprint;
  const bool warm_marks = clock_.memory_bytes() >= batch::kPrefetchFootprint;
  const FastDiv32 mod_cells(static_cast<std::uint32_t>(cfg_.cells));
  const FastDiv32 div_group(static_cast<std::uint32_t>(cfg_.group_cells));
  const batch::MarkStager stager(clock_, time_, times);
  std::size_t idx = 0;
  batch::pipelined_blocks(
      keys, 1, scratch_,
      // Stage 1: one SIMD hash sweep per block (k = 1), FastDiv reduction,
      // precomputed marks.  aux = cur << 32 | gid.
      [&](std::size_t begin, std::size_t n, batch::Slot* out) {
        std::uint32_t h32[batch::kMaxBlock];
        std::uint32_t pos[batch::kMaxBlock];
        std::uint32_t gid[batch::kMaxBlock];
        std::uint32_t cur[batch::kMaxBlock];
        simd::bobhash32_keys(keys.data() + begin, n, cfg_.seed, h32);
        simd::positions_groups(h32, n, mod_cells, div_group, pos, gid);
        stager.stage(begin, n, gid, cur);
        for (std::size_t b = 0; b < n; ++b) {
          out[b].pos = pos[b];
          out[b].aux = (std::uint64_t{cur[b]} << 32) | gid[b];
          if (warm_bits) bits_.prefetch(pos[b], true);
          if (warm_marks) clock_.prefetch(gid[b], true);
        }
      },
      [this, times, &idx] {
        if (times != nullptr)
          time_ = times[idx++];
        else
          ++time_;
        if (obs::enabled()) obs::she_metrics().hash_calls.inc();
      },
      // Stage 2: scalar CheckGroup + set, against the staged mark.
      [this](std::uint64_t, unsigned, const batch::Slot& s) {
        const std::size_t gid = s.aux & 0xFFFFFFFFu;
        if (clock_.touch_precomputed(gid, s.aux >> 32)) {
          std::size_t first = gid * cfg_.group_cells;
          bits_.clear_range(first, std::min(cfg_.group_cells, cfg_.cells - first));
        }
        bits_.set(s.pos);
      });
}

bool SheBitmap::legal_age(std::uint64_t age) const {
  auto lower = static_cast<std::uint64_t>(cfg_.beta * static_cast<double>(cfg_.window));
  return age >= lower;
}

std::size_t SheBitmap::legal_groups() const {
  std::size_t legal = 0;
  for (std::size_t g = 0; g < clock_.groups(); ++g)
    if (legal_age(clock_.age(g, time_))) ++legal;
  return legal;
}

double SheBitmap::cardinality() const {
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  std::size_t zeros = 0;
  std::size_t observed = 0;
  // Ages and staleness marks are staged in chunks through the vectorized
  // GroupClock kernels (same values as the per-group age()/stale() calls,
  // one division per scan instead of two per group).
  const GroupClock::TimeParts now = clock_.split(time_);
  constexpr std::size_t kChunk = 256;
  std::uint64_t age[kChunk];
  std::uint32_t cur[kChunk];
  const std::size_t groups = clock_.groups();
  for (std::size_t g0 = 0; g0 < groups; g0 += kChunk) {
    const std::size_t n = std::min(kChunk, groups - g0);
    clock_.stage_marks_range(g0, n, now, cur, age);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t g = g0 + j;
      if (track) cls.add(age[j], cfg_.window);
      if (!legal_age(age[j])) continue;
      std::size_t first = g * cfg_.group_cells;
      std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
      observed += count;
      zeros += clock_.stored_mark(g) != cur[j] ? count
                                               : bits_.zeros_range(first, count);
    }
  }
  cls.commit(track);
  return fixed::linear_counting(zeros, observed, static_cast<double>(cfg_.cells));
}

double SheBitmap::cardinality(std::uint64_t window) const {
  if (window == 0 || window > cfg_.window)
    throw std::invalid_argument("SheBitmap: query window must be in [1, N]");
  auto lower = static_cast<std::uint64_t>(cfg_.beta * static_cast<double>(window));
  auto upper = static_cast<std::uint64_t>((2.0 - cfg_.beta) * static_cast<double>(window));
  const bool track = obs::enabled();
  obs::AgeClassCounts cls;
  std::size_t zeros = 0;
  std::size_t observed = 0;
  const GroupClock::TimeParts now = clock_.split(time_);
  constexpr std::size_t kChunk = 256;
  std::uint64_t age[kChunk];
  std::uint32_t cur[kChunk];
  const std::size_t groups = clock_.groups();
  for (std::size_t g0 = 0; g0 < groups; g0 += kChunk) {
    const std::size_t n = std::min(kChunk, groups - g0);
    clock_.stage_marks_range(g0, n, now, cur, age);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t g = g0 + j;
      if (track) cls.add(age[j], window);
      if (age[j] < lower || age[j] >= upper) continue;
      std::size_t first = g * cfg_.group_cells;
      std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
      observed += count;
      zeros += clock_.stored_mark(g) != cur[j] ? count
                                               : bits_.zeros_range(first, count);
    }
  }
  cls.commit(track);
  if (observed == 0) return 0.0;  // no group's age matches this sub-window yet
  return fixed::linear_counting(zeros, observed, static_cast<double>(cfg_.cells));
}

std::vector<double> SheBitmap::cardinality_batch(
    std::span<const std::uint64_t> windows) const {
  for (std::uint64_t w : windows)
    if (w == 0 || w > cfg_.window)
      throw std::invalid_argument("SheBitmap: query window must be in [1, N]");
  const std::size_t nw = windows.size();
  std::vector<std::uint64_t> lower(nw), upper(nw);
  for (std::size_t j = 0; j < nw; ++j) {
    lower[j] = static_cast<std::uint64_t>(cfg_.beta * static_cast<double>(windows[j]));
    upper[j] = static_cast<std::uint64_t>((2.0 - cfg_.beta) *
                                          static_cast<double>(windows[j]));
  }
  const bool track = obs::enabled();
  std::vector<obs::AgeClassCounts> cls(track ? nw : 0);
  std::vector<std::size_t> zeros(nw, 0), observed(nw, 0);
  // One scan: each group's age and zero count are computed once and reused
  // by every window whose legal band contains the age.
  for (std::size_t g = 0; g < clock_.groups(); ++g) {
    std::uint64_t age = clock_.age(g, time_);
    std::size_t first = g * cfg_.group_cells;
    std::size_t count = std::min(cfg_.group_cells, cfg_.cells - first);
    std::size_t group_zeros = 0;
    bool zeros_known = false;
    for (std::size_t j = 0; j < nw; ++j) {
      if (track) cls[j].add(age, windows[j]);
      if (age < lower[j] || age >= upper[j]) continue;
      if (!zeros_known) {
        group_zeros =
            clock_.stale(g, time_) ? count : bits_.zeros_range(first, count);
        zeros_known = true;
      }
      observed[j] += count;
      zeros[j] += group_zeros;
    }
  }
  std::vector<double> result(nw, 0.0);
  for (std::size_t j = 0; j < nw; ++j) {
    if (track) cls[j].commit(true);
    if (observed[j] == 0) continue;  // matches the scalar 0.0 answer
    result[j] = fixed::linear_counting(zeros[j], observed[j],
                                       static_cast<double>(cfg_.cells));
  }
  return result;
}

void SheBitmap::save(BinaryWriter& out) const {
  out.tag("SHBM");
  cfg_.save(out);
  out.u64(time_);
  clock_.save(out);
  bits_.save(out);
}

SheBitmap SheBitmap::load(BinaryReader& in) {
  in.expect_tag("SHBM");
  SheConfig cfg = SheConfig::load(in);
  SheBitmap bm(cfg);
  bm.time_ = in.u64();
  bm.clock_ = GroupClock::load(in);
  bm.bits_ = BitArray::load(in);
  if (bm.clock_.groups() != cfg.groups() || bm.bits_.size() != cfg.cells)
    throw std::runtime_error("SheBitmap::load: shape mismatch");
  return bm;
}

void SheBitmap::clear() {
  bits_.clear();
  clock_.reset();
  time_ = 0;
}

}  // namespace she
