// Sliding-window heavy hitters on top of SHE-CM.
//
// SHE-CM answers point frequency queries; finding the *heaviest* keys also
// needs a candidate set, since a sketch cannot be enumerated.  This wrapper
// keeps a bounded candidate table refreshed by the stream itself: every
// inserted key whose current SHE-CM estimate beats the weakest candidate
// enters the table (evicting the weakest).  Because SHE-CM never
// under-estimates (up to the documented all-young corner), a true heavy
// hitter keeps re-qualifying itself on every arrival, while keys that left
// the window decay and are evicted on the next refresh.
//
// top(k) re-estimates every candidate at query time, so reported counts
// reflect the *current* window even if the candidate entered long ago.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "she/she_cm.hpp"

namespace she {

class HeavyHitters {
 public:
  struct Entry {
    std::uint64_t key;
    std::uint64_t estimate;
  };

  /// SHE-CM with `cfg`/`hashes`, candidate table of `capacity` keys
  /// (capacity should be a small multiple of the k you intend to query).
  HeavyHitters(const SheConfig& cfg, unsigned hashes, std::size_t capacity);

  /// Insert one stream item.
  void insert(std::uint64_t key);

  /// The current top-k candidates by re-estimated window frequency,
  /// sorted descending (ties by key for determinism).
  [[nodiscard]] std::vector<Entry> top(std::size_t k) const;

  /// Point estimate passthrough.
  [[nodiscard]] std::uint64_t frequency(std::uint64_t key) const {
    return sketch_.frequency(key);
  }

  void clear();

  /// Replace the underlying sketch (checkpoint restore).  The candidate
  /// table restarts empty and re-populates as the resumed stream flows;
  /// point queries are exact-as-before immediately.
  void restore_sketch(SheCountMin sketch) {
    sketch_ = std::move(sketch);
    candidates_.clear();
    since_refresh_ = 0;
  }

  /// The stored candidate table (admission/refresh-time estimates),
  /// sorted by key for deterministic serialization.
  [[nodiscard]] std::vector<Entry> candidates() const;

  /// Re-seed the candidate table after restore_sketch (entries beyond
  /// capacity are ignored), so top() answers survive a checkpoint.
  void restore_candidates(const std::vector<Entry>& entries);

  [[nodiscard]] std::uint64_t time() const { return sketch_.time(); }
  [[nodiscard]] std::size_t candidate_count() const { return candidates_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const SheCountMin& sketch() const { return sketch_; }

  /// Sketch + candidate-table footprint (16 B per candidate slot).
  [[nodiscard]] std::size_t memory_bytes() const {
    return sketch_.memory_bytes() + capacity_ * 16;
  }

 private:
  void maybe_admit(std::uint64_t key, std::uint64_t estimate);

  SheCountMin sketch_;
  std::size_t capacity_;
  std::size_t since_refresh_ = 0;
  // Candidate set; values are the estimate at admission/refresh time and
  // are re-estimated on query.
  std::unordered_map<std::uint64_t, std::uint64_t> candidates_;
};

}  // namespace she
