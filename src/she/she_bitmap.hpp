// SHE-BM — linear-counting Bitmap under the SHE framework (paper Sec. 4.1).
//
// Insert sets the single hashed bit after CheckGroup-ing its group.  The
// cardinality query collects the *legal* groups — those with age in
// [beta*N, Tcycle), i.e. near-perfect young cells plus all aged cells (the
// base estimator has two-sided error, so near-window young cells reduce
// bias) — counts their zero bits, and extrapolates the zero fraction to the
// whole array: C_hat = -M * ln(u / (w * l)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bit_array.hpp"
#include "common/bobhash.hpp"
#include "she/batch.hpp"
#include "she/config.hpp"
#include "she/group_clock.hpp"

namespace she {

class SheBitmap {
 public:
  explicit SheBitmap(const SheConfig& cfg);

  /// Insert one item; advances the stream clock by one.
  void insert(std::uint64_t key);

  /// Insert a batch (bit-for-bit equivalent to insert() per key, in
  /// order) via the generic she::batch pipeline: the single hashed bit and
  /// its group mark are prefetched a block ahead.
  void insert_batch(std::span<const std::uint64_t> keys);

  /// Time-based windows: insert at explicit timestamp `t` (monotone
  /// non-decreasing; throws std::invalid_argument if it moves backwards).
  /// With insert_at, `window` counts time units instead of items.
  void insert_at(std::uint64_t key, std::uint64_t t);

  /// Batched insert_at: key[i] inserted at times[i] (monotone
  /// non-decreasing, validated up front; throws like insert_at).  Runs the
  /// same batch/SIMD pipeline as insert_batch.
  void insert_at_batch(std::span<const std::uint64_t> keys,
                       std::span<const std::uint64_t> times);

  /// Advance the clock to `t` without inserting, so queries reflect the
  /// window (t - N, t] even during arrival gaps.
  void advance_to(std::uint64_t t);

  /// Estimated number of distinct items in the last-N window (paper
  /// estimator: legal ages [beta*N, Tcycle)).
  [[nodiscard]] double cardinality() const;

  /// Multi-window query: distinct items in the last `window` items for any
  /// window in [1, N].  Uses the symmetric legal band
  /// [beta*window, (2-beta)*window) so the lumped group ages centre on the
  /// queried window; smaller windows leave fewer legal groups (higher
  /// variance).
  [[nodiscard]] double cardinality(std::uint64_t window) const;

  /// Batched multi-window query: element-wise identical to
  /// cardinality(windows[i]) but the group ages and zero counts are
  /// computed in ONE pass over the array instead of one scan per window.
  [[nodiscard]] std::vector<double> cardinality_batch(
      std::span<const std::uint64_t> windows) const;

  /// Number of groups currently in the legal age range (diagnostic; the
  /// variance analysis of Sec. 5.3 depends on it).
  [[nodiscard]] std::size_t legal_groups() const;

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] const SheConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t memory_bytes() const {
    return bits_.memory_bytes() + clock_.memory_bytes();
  }

  /// Checkpoint the full sliding-window state; load() resumes with
  /// identical answers.
  void save(BinaryWriter& out) const;
  static SheBitmap load(BinaryReader& in);

 private:
  [[nodiscard]] bool legal_age(std::uint64_t age) const;

  SheConfig cfg_;
  GroupClock clock_;
  BitArray bits_;
  std::uint64_t time_ = 0;
  // Shared batch-insert core: times == nullptr means +1 per key.  Picks the
  // SIMD or scalar-reference stage 1; stage 2 is identical either way.
  void insert_many(std::span<const std::uint64_t> keys,
                   const std::uint64_t* times);
  void insert_many_simd(std::span<const std::uint64_t> keys,
                        const std::uint64_t* times);

  std::vector<batch::Slot> scratch_;  // insert_batch staging (not state)
};

}  // namespace she
