// SHEsoft-BF — the *software* version of the SHE framework applied to the
// Bloom filter (paper Sec. 3.2 and Fig. 3).
//
// Instead of grouped lazy cleaning, a cleaning process sweeps the bit array
// left-to-right at constant speed, resetting one cell at a time, completing
// a full pass every Tcycle items and then wrapping.  Cell ages follow from
// the distance to the sweep pointer.  Queries ignore young cells exactly as
// the hardware version does.
//
// This variant exists (a) for fidelity to the paper and (b) as the
// reference in the soft-vs-hardware equivalence tests/ablation: with group
// size w the hardware version is a block-granular approximation of this
// sweep.
#pragma once

#include <cstdint>

#include "common/bit_array.hpp"
#include "common/bobhash.hpp"
#include "she/config.hpp"

namespace she {

class SoftSheBloomFilter {
 public:
  /// `cfg.group_cells` is ignored (cell-granular sweep); other fields as in
  /// SheBloomFilter.
  SoftSheBloomFilter(const SheConfig& cfg, unsigned hashes);

  /// Insert one item; advances the stream clock and the sweep pointer.
  void insert(std::uint64_t key);

  /// Membership in the last-N window; one-sided like SHE-BF.
  [[nodiscard]] bool contains(std::uint64_t key) const;

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] const SheConfig& config() const { return cfg_; }

  /// Items since cell `pos` was last swept; `time()` if never swept yet.
  [[nodiscard]] std::uint64_t cell_age(std::size_t pos) const;

  [[nodiscard]] std::size_t memory_bytes() const { return bits_.memory_bytes(); }

 private:
  /// Total cells swept by time t: floor(M * t / Tcycle).
  [[nodiscard]] std::uint64_t swept_by(std::uint64_t t) const;

  [[nodiscard]] std::size_t position(std::uint64_t key, unsigned i) const {
    return BobHash32(cfg_.seed + i)(key) % cfg_.cells;
  }

  SheConfig cfg_;
  unsigned hashes_;
  BitArray bits_;
  std::uint64_t time_ = 0;
};

}  // namespace she
