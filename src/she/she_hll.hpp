// SHE-HLL — HyperLogLog under the SHE framework (paper Sec. 4.3).
//
// Each 5-bit register is its own group (w = 1).  Insert routes the item to
// register Hc(x) mod M, CheckGroups it, and keeps the maximum rank
// (leading-zero count + 1) of Hz(x).  The cardinality query uses only the
// legal registers (age in [beta*N, Tcycle)) and applies the standard
// bias-corrected harmonic estimator scaled to the full register count,
// C_hat = alpha_k * k * M / sum(2^-l_j), with linear-counting small-range
// correction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bobhash.hpp"
#include "common/packed_array.hpp"
#include "she/batch.hpp"
#include "she/config.hpp"
#include "she/group_clock.hpp"

namespace she {

class SheHyperLogLog {
 public:
  /// `cfg.cells` registers; `cfg.group_cells` must be 1 (the paper fixes
  /// w = 1 for SHE-HLL).
  explicit SheHyperLogLog(const SheConfig& cfg);

  /// Insert one item; advances the stream clock by one.
  void insert(std::uint64_t key);

  /// Insert a batch (bit-for-bit equivalent to insert() per key, in
  /// order): both hashes (register index and rank) are computed a block
  /// ahead and the register + mark lines prefetched.
  void insert_batch(std::span<const std::uint64_t> keys);

  /// Time-based windows: insert at explicit timestamp `t` (monotone
  /// non-decreasing; throws std::invalid_argument if it moves backwards).
  /// With insert_at, `window` counts time units instead of items.
  void insert_at(std::uint64_t key, std::uint64_t t);

  /// Batched insert_at: key[i] inserted at times[i] (monotone
  /// non-decreasing, validated up front; throws like insert_at).  Runs the
  /// same batch/SIMD pipeline as insert_batch.
  void insert_at_batch(std::span<const std::uint64_t> keys,
                       std::span<const std::uint64_t> times);

  /// Advance the clock to `t` without inserting, so queries reflect the
  /// window (t - N, t] even during arrival gaps.
  void advance_to(std::uint64_t t);

  /// Estimated number of distinct items in the last-N window (paper
  /// estimator: legal ages [beta*N, Tcycle)).
  [[nodiscard]] double cardinality() const;

  /// Multi-window query: distinct items in the last `window` items for any
  /// window in [1, N], using the symmetric legal band
  /// [beta*window, (2-beta)*window).
  [[nodiscard]] double cardinality(std::uint64_t window) const;

  /// Batched multi-window query: element-wise identical to
  /// cardinality(windows[i]) but the register ages and values are read in
  /// ONE pass instead of one scan per window.
  [[nodiscard]] std::vector<double> cardinality_batch(
      std::span<const std::uint64_t> windows) const;

  /// Registers currently in the legal age range (diagnostic).
  [[nodiscard]] std::size_t legal_groups() const;

  void clear();

  [[nodiscard]] std::uint64_t time() const { return time_; }
  [[nodiscard]] const SheConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t memory_bytes() const {
    return regs_.memory_bytes() + clock_.memory_bytes();
  }

  /// Checkpoint the full sliding-window state; load() resumes with
  /// identical answers.
  void save(BinaryWriter& out) const;
  static SheHyperLogLog load(BinaryReader& in);

 private:
  [[nodiscard]] bool legal_age(std::uint64_t age) const;

  SheConfig cfg_;
  GroupClock clock_;
  PackedArray regs_;  // 5-bit ranks, 0 = empty
  std::uint64_t time_ = 0;
  // Shared batch-insert core: times == nullptr means +1 per key.  Picks the
  // SIMD or scalar-reference stage 1; stage 2 is identical either way.
  void insert_many(std::span<const std::uint64_t> keys,
                   const std::uint64_t* times);
  void insert_many_simd(std::span<const std::uint64_t> keys,
                        const std::uint64_t* times);

  std::vector<batch::Slot> scratch_;  // insert_batch staging (not state)
};

}  // namespace she
